//! The executor: streams, events, and the simulated event loop.
//!
//! Programming model (deliberately CUDA-shaped):
//!
//! 1. create streams with [`GpuSystem::stream`];
//! 2. enqueue operations — each returns an [`OpId`] that doubles as an
//!    event other operations can wait on;
//! 3. operations on one stream run in FIFO order; across streams they run
//!    concurrently unless ordered by waits;
//! 4. [`GpuSystem::synchronize`] drives the simulation until every queue
//!    drains, advancing the simulated clock; afterwards the host code can
//!    inspect buffer contents (e.g. for pivot selection) and enqueue the
//!    next phase, exactly like a host thread calling
//!    `cudaDeviceSynchronize` between algorithm phases.
//!
//! Transfers become fluid flows (bandwidth contention handled by the
//! max-min allocator); kernels and CPU tasks get durations from the
//! calibrated cost model; the *data effect* of every operation applies at
//! its completion time, so any host-side read after a `synchronize` sees
//! exactly what real hardware would have produced.

use crate::buffer::{BufId, Fidelity, Location, World};
use crate::exec::{Access, EffectExecutor, RawSlice, RawSliceConst};
use crate::primitives;
use msort_cpu::multiway::{parallel_multiway_merge_with, ParallelMergeConfig};
use msort_data::SortKey;
use msort_sim::{CostModel, FaultPlan, FlowId, FlowSim, GpuSortAlgo, SimDuration, SimTime};
use msort_topology::{Endpoint, FlowRequest, LinkId, Platform, Route};
use msort_trace::{groups, Recorder, TrackId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// How many times one transfer may be interrupted by link failures before
/// the run is declared unrecoverable.
const MAX_TRANSFER_RETRIES: u32 = 8;

/// Simulated-time backoff before the first re-issue of an interrupted
/// transfer (the driver's fault-detection latency); doubles per attempt.
const RETRY_BACKOFF: SimDuration = SimDuration(10_000);

/// Handle to an enqueued operation; awaitable as an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(usize);

/// Handle to a stream (FIFO op queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(usize);

/// Experiment phase an operation belongs to; used by the harness to build
/// the paper's sort-duration breakdowns (Figures 12–14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Host-to-device copies.
    HtoD,
    /// Device-to-host copies.
    DtoH,
    /// On-GPU sorting.
    Sort,
    /// Merge work (P2P swaps + local merges, or the CPU multiway merge).
    Merge,
    /// Splitter-based bucket partitioning (sample sort's local scatter).
    Partition,
    /// Anything else (pivot selection, bookkeeping).
    Other,
}

/// What an operation does. Durations: `Transfer`/`HostFlow` emerge from the
/// fluid model; `Fixed` durations are computed when the op starts.
enum OpKind<K> {
    /// A copy along `route`; `bytes` is derived from the logical length.
    Transfer {
        route: Route,
        src: (BufId, u64),
        dst: (BufId, u64),
        len: u64,
    },
    /// A fixed-duration compute task with a data effect.
    Fixed {
        duration: SimDuration,
        effect: Effect<K>,
    },
    /// A device- or host-local copy: fixed duration (device memory
    /// bandwidth, no interconnect involved) with a transfer-style effect.
    LocalCopy {
        duration: SimDuration,
        src: (BufId, u64),
        dst: (BufId, u64),
        len: u64,
    },
    /// A CPU task modeled as a host-memory flow so it *contends with
    /// concurrent transfers for memory bandwidth* (the mechanism behind
    /// the paper's eager-merging slowdown). `bytes` are the total bytes
    /// the task moves; `rate_cap` is its compute-side ceiling.
    HostFlow {
        socket: usize,
        bytes: u64,
        rate_cap: f64,
        effect: Effect<K>,
    },
}

/// The data effect applied at completion time.
enum Effect<K> {
    None,
    DeviceSort {
        algo: GpuSortAlgo,
        data: BufId,
        range: (u64, u64),
        aux: BufId,
    },
    DeviceMergeInto {
        src: BufId,
        mid: u64,
        len: u64,
        dst: BufId,
    },
    HostSort {
        data: BufId,
    },
    HostMultiwayMerge {
        inputs: Vec<(BufId, u64, u64)>,
        output: (BufId, u64),
    },
    DeviceMultiwayMerge {
        inputs: Vec<(BufId, u64, u64)>,
        dst: BufId,
    },
    /// Stable splitter partition of `data[range]` into contiguous buckets
    /// (sample sort's local scatter). `splitters` are `(key, position)`
    /// pairs in the global sample order.
    DevicePartition {
        data: BufId,
        range: (u64, u64),
        aux: BufId,
        splitters: Vec<(K, u64)>,
    },
    #[allow(dead_code)]
    Marker(std::marker::PhantomData<K>),
}

impl<K> Effect<K> {
    fn name(&self) -> &'static str {
        match self {
            Effect::None | Effect::Marker(_) => "delay",
            Effect::DeviceSort { .. } => "gpu sort",
            Effect::DeviceMergeInto { .. } => "gpu merge",
            Effect::HostSort { .. } => "cpu sort",
            Effect::HostMultiwayMerge { .. } => "cpu multiway merge",
            Effect::DeviceMultiwayMerge { .. } => "gpu multiway merge",
            Effect::DevicePartition { .. } => "gpu partition",
        }
    }
}

enum OpState {
    Pending,
    Running {
        /// Completion time for fixed-duration ops; `None` while a fluid
        /// flow (tracked in `GpuSystem::flow_op`) carries the op.
        ends: Option<SimTime>,
    },
    /// A transfer interrupted by a link failure (or blocked on a fully
    /// unroutable fabric), waiting until `at` to re-resolve its route and
    /// re-issue its remaining bytes.
    Retrying {
        at: SimTime,
    },
    Done,
}

struct Op<K> {
    stream: StreamId,
    name: &'static str,
    kind: Option<OpKind<K>>,
    state: OpState,
    phase: Phase,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    /// Not-yet-fired waits (incoming dependency edges). Readiness is a
    /// counter decrement at each dependency's completion, not a rescan of
    /// a wait list — O(edges) total instead of O(ops · edges).
    blockers: u32,
    /// Ops waiting on this one (outgoing dependency edges, absolute
    /// indices); drained when this op completes.
    subs: Vec<usize>,
    /// Copies capture their source at start and write at completion —
    /// real DMA streams the data through the transfer window, so a source
    /// overwritten mid-transfer (the 3n-approach's in-place data-transfer
    /// swap, Figure 10) must not corrupt the outgoing bytes.
    staged: Option<Vec<K>>,
    /// Times this transfer was interrupted by a link failure.
    attempts: u32,
    /// Bytes still undelivered after an interruption; `None` before the
    /// first interruption (the full logical size applies).
    pending_bytes: Option<u64>,
}

/// The virtual multi-GPU system: platform + cost model + world + executor.
pub struct GpuSystem<'p, K: SortKey> {
    flows: FlowSim<'p>,
    cost: CostModel,
    world: World<K>,
    /// Retained ops; absolute op index = `ops_base` + ring position. With
    /// op reclamation on (see [`GpuSystem::set_op_reclaim`]) completed
    /// front ops are popped, so a long-running service retains only the
    /// live window instead of every op ever enqueued.
    ops: VecDeque<Op<K>>,
    /// Absolute index of `ops[0]`; ops below it are reclaimed (and Done).
    ops_base: usize,
    /// Event min-heap over fixed-duration completions: `(ends, op)`.
    /// Lazily invalidated — an entry is live only while the op is still
    /// `Running` with exactly that end time (the PR 1 completion-heap
    /// pattern).
    timers: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Event min-heap over retry wakeups: `(at, op)`, lazily invalidated
    /// like `timers`.
    retry_heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Owning op of every in-flight flow (transfers and host flows), so
    /// flow completions and interruptions resolve in O(1) instead of a
    /// scan over all ops.
    flow_op: HashMap<FlowId, usize>,
    /// Streams whose head may have become startable since the last
    /// [`GpuSystem::start_ready_ops`] pass (deduplicated via
    /// `StreamQueue::dirty`).
    dirty_streams: Vec<usize>,
    /// Completed op log for scheduler wakeups; recorded only while
    /// [`GpuSystem::set_completion_log`] is on.
    completion_log: Vec<OpId>,
    log_completions: bool,
    reclaim_ops: bool,
    /// Per stream: index of the next not-yet-started op in `order`.
    streams: Vec<StreamQueue>,
    /// Shortest paths already computed, keyed by endpoint pair. A sort
    /// enqueues thousands of copies over a handful of distinct pairs;
    /// routing each once is enough while the fabric's health generation
    /// (`route_cache_gen`) is unchanged — any link state change flushes
    /// the cache. The flag records whether the route is a detour from the
    /// pristine-fabric default (i.e. it routes around unhealthy links).
    route_cache: HashMap<(Endpoint, Endpoint), (Route, bool)>,
    /// Health generation the route cache was built at.
    route_cache_gen: u64,
    /// Transfers routed around unhealthy links: planned detours (the
    /// default path was unhealthy at plan time) plus mid-flight re-routes
    /// of interrupted copies.
    rerouted: u64,
    /// Transfer re-issues after link-failure interruptions.
    retries: u64,
    /// Observability sink; disabled by default. Completed ops emit spans
    /// on a per-stream track (`set_recorder` also forwards the handle to
    /// the flow engine for link/flow/fault events).
    recorder: Recorder,
    /// Per-stream span tracks, created lazily (index = stream id).
    rec_stream_tracks: Vec<TrackId>,
    /// Wall-clock executor for data effects: completed ops enqueue their
    /// copy/sort/merge as jobs tagged with buffer read/write sets;
    /// non-conflicting jobs run concurrently on the shared worker pool and
    /// the driver joins before any world access (see [`crate::exec`]).
    exec: EffectExecutor,
}

struct StreamQueue {
    ops: Vec<OpId>,
    next: usize,
    /// `true` while the stream sits in `dirty_streams`.
    dirty: bool,
}

impl<'p, K: SortKey> GpuSystem<'p, K> {
    /// Create a system over `platform` at the given fidelity.
    #[must_use]
    pub fn new(platform: &'p Platform, fidelity: Fidelity) -> Self {
        Self {
            flows: FlowSim::new(platform),
            cost: CostModel::for_platform(platform),
            world: World::new(&platform.topology, fidelity),
            ops: VecDeque::new(),
            ops_base: 0,
            timers: BinaryHeap::new(),
            retry_heap: BinaryHeap::new(),
            flow_op: HashMap::new(),
            dirty_streams: Vec::new(),
            completion_log: Vec::new(),
            log_completions: false,
            reclaim_ops: false,
            streams: Vec::new(),
            route_cache: HashMap::new(),
            route_cache_gen: 0,
            rerouted: 0,
            retries: 0,
            recorder: Recorder::disabled(),
            rec_stream_tracks: Vec::new(),
            exec: EffectExecutor::new(),
        }
    }

    /// Set the effect executor's concurrency budget. `1` forces the serial
    /// baseline (every effect applies inline at its op's completion, on the
    /// driver thread); the default is the shared pool's thread count. The
    /// final buffer contents and reports are bit-identical either way —
    /// the executor changes *when and where* effects run, never what they
    /// compute.
    pub fn set_effect_threads(&mut self, threads: usize) {
        self.exec.flush();
        self.exec.set_threads(threads);
    }

    /// Attach a [`Recorder`]: completed ops emit per-stream spans, and the
    /// underlying flow engine emits link-utilization counters, flow
    /// lifecycle events, and fault instants. A disabled recorder (the
    /// default) costs one branch per completed op.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.flows.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The attached recorder (disabled unless [`GpuSystem::set_recorder`]
    /// installed an enabled one).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Install a fault schedule on the underlying flow engine. A no-op for
    /// empty plans.
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        self.flows.schedule_faults(plan);
    }

    /// Transfers that routed around unhealthy links (host fallback or
    /// multi-hop relay after a link fault) — planned detours plus
    /// mid-flight re-routes. 0 on a healthy fabric.
    #[must_use]
    pub fn rerouted_transfers(&self) -> u64 {
        self.rerouted
    }

    /// Transfer re-issues after link-failure interruptions.
    #[must_use]
    pub fn transfer_retries(&self) -> u64 {
        self.retries
    }

    /// The platform being simulated.
    #[must_use]
    pub fn platform(&self) -> &'p Platform {
        self.flows.platform()
    }

    /// The calibrated cost model in effect.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The buffer world (for allocation and data inspection).
    #[must_use]
    pub fn world(&self) -> &World<K> {
        &self.world
    }

    /// Mutable access to the buffer world (allocation between phases).
    pub fn world_mut(&mut self) -> &mut World<K> {
        &mut self.world
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.flows.now()
    }

    /// Create a new stream.
    pub fn stream(&mut self) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(StreamQueue {
            ops: Vec::new(),
            next: 0,
            dirty: false,
        });
        id
    }

    /// Reclaim completed ops from the front of the op ring as the
    /// simulation drains them, so a long-running service holds only the
    /// live window of operations. Reclaimed ops lose their spans:
    /// [`GpuSystem::op_span`] returns `None` and they vanish from
    /// [`GpuSystem::phase_busy`]/timeline queries — enable this only when
    /// the driver does not read per-op history (the serve loop doesn't).
    pub fn set_op_reclaim(&mut self, on: bool) {
        self.reclaim_ops = on;
    }

    /// Record every completed op in a log drained by
    /// [`GpuSystem::drain_completions`] — the scheduler-wakeup channel
    /// that lets a multi-job driver react to exactly the ops that
    /// finished instead of rescanning every job's wait list.
    pub fn set_completion_log(&mut self, on: bool) {
        self.log_completions = on;
        if !on {
            self.completion_log.clear();
        }
    }

    /// Move the completed-op log (in completion order) into `out`.
    pub fn drain_completions(&mut self, out: &mut Vec<OpId>) {
        out.append(&mut self.completion_log);
    }

    /// Op at absolute index `idx` (must not be reclaimed).
    fn op(&self, idx: usize) -> &Op<K> {
        &self.ops[idx - self.ops_base]
    }

    fn op_mut(&mut self, idx: usize) -> &mut Op<K> {
        &mut self.ops[idx - self.ops_base]
    }

    /// `true` once the op at absolute index `idx` has completed (reclaimed
    /// ops are Done by construction).
    fn op_done_idx(&self, idx: usize) -> bool {
        idx < self.ops_base || matches!(self.op(idx).state, OpState::Done)
    }

    /// Queue `stream` for the next [`GpuSystem::start_ready_ops`] pass.
    fn mark_dirty(&mut self, stream: usize) {
        if !self.streams[stream].dirty {
            self.streams[stream].dirty = true;
            self.dirty_streams.push(stream);
        }
    }

    /// When an operation started and finished (after `synchronize`).
    /// `None` for reclaimed ops (see [`GpuSystem::set_op_reclaim`]).
    #[must_use]
    pub fn op_span(&self, op: OpId) -> Option<(SimTime, SimTime)> {
        if op.0 < self.ops_base {
            return None;
        }
        let o = self.op(op.0);
        Some((o.started?, o.finished?))
    }

    /// The stream an operation was enqueued on.
    ///
    /// # Panics
    /// Panics if the op was reclaimed.
    #[must_use]
    pub fn op_stream(&self, op: OpId) -> StreamId {
        assert!(op.0 >= self.ops_base, "op {op:?} was reclaimed");
        self.op(op.0).stream
    }

    /// Total wall-clock (simulated) time during which at least one
    /// completed operation of `phase` was running — the union of the op
    /// intervals, which is how the paper's sort-duration breakdowns
    /// attribute time to overlapping phases.
    #[must_use]
    pub fn phase_busy(&self, phase: Phase) -> SimDuration {
        interval_union(
            self.ops
                .iter()
                .filter(|o| o.phase == phase)
                .filter_map(|o| Some((o.started?, o.finished?)))
                .collect(),
        )
    }

    /// Busy-time union of an explicit set of completed ops — the same
    /// attribution as [`GpuSystem::phase_busy`], but restricted to the ops
    /// one job enqueued, so per-job phase breakdowns stay correct when
    /// several jobs share this system.
    #[must_use]
    pub fn ops_busy(&self, ops: &[OpId]) -> SimDuration {
        interval_union(
            ops.iter()
                .filter_map(|id| {
                    if id.0 < self.ops_base {
                        return None;
                    }
                    let o = self.op(id.0);
                    Some((o.started?, o.finished?))
                })
                .collect(),
        )
    }

    /// The constraint table rates are currently allocated against: the
    /// health-adjusted clone once a fault has fired, the platform's
    /// canonical table before (topology-aware placement scores candidate
    /// GPU sets against this, so degraded links repel new gangs).
    #[must_use]
    pub fn constraint_table(&self) -> &msort_topology::ConstraintTable {
        self.flows.constraint_table()
    }

    /// `true` while every link of `route` can carry traffic.
    #[must_use]
    pub fn route_usable(&self, route: &Route) -> bool {
        self.flows.route_usable(route)
    }

    /// Raw timeline entries for completed operations (unsorted).
    pub(crate) fn timeline_entries(&self) -> Vec<crate::trace::TimelineEntry> {
        self.ops
            .iter()
            .filter_map(|o| {
                Some(crate::trace::TimelineEntry {
                    name: o.name,
                    phase: o.phase,
                    stream: o.stream.0,
                    start: o.started?,
                    end: o.finished?,
                })
            })
            .collect()
    }

    // ---- enqueue API ------------------------------------------------

    /// Enqueue a copy of `len` logical keys from `(src, src_off)` to
    /// `(dst, dst_off)` on `stream`. The direction (HtoD/DtoH/DtoD/P2P)
    /// and its route follow from the buffer locations.
    #[allow(clippy::too_many_arguments)] // mirrors cudaMemcpyAsync's shape
    pub fn memcpy(
        &mut self,
        stream: StreamId,
        src: BufId,
        src_off: u64,
        dst: BufId,
        dst_off: u64,
        len: u64,
        waits: &[OpId],
        phase: Phase,
    ) -> OpId {
        let src_loc = self.world.location(src);
        let dst_loc = self.world.location(dst);
        if src_loc == dst_loc {
            // Device-local (or host-local) copy: modeled as a fixed-duration
            // task at the device's copy bandwidth, not an interconnect flow.
            let bytes = len * K::DATA_TYPE.key_bytes();
            let duration = match src_loc {
                Location::Gpu { index } => self
                    .cost
                    .dtod_copy(self.platform().topology.gpu_model(index), bytes),
                // Host-local memcpy at the socket's combined stream rate.
                Location::Host { .. } => {
                    SimDuration::from_secs_f64(2.0 * bytes as f64 / self.cost.cpu.merge_bw)
                }
            };
            return self.push_op(
                stream,
                waits,
                OpKind::LocalCopy {
                    duration,
                    src: (src, src_off),
                    dst: (dst, dst_off),
                    len,
                },
                phase,
            );
        }

        let route = self.cached_route(src_loc.endpoint(), dst_loc.endpoint());
        self.push_op(
            stream,
            waits,
            OpKind::Transfer {
                route,
                src: (src, src_off),
                dst: (dst, dst_off),
                len,
            },
            phase,
        )
    }

    /// Shortest path between two endpoints, computed once per pair and
    /// served from the cache afterwards. The cache is flushed whenever the
    /// fabric's health generation moves (a fault fired or a link was
    /// restored), so routes never outlive the link states they assumed.
    fn cached_route(&mut self, src: Endpoint, dst: Endpoint) -> Route {
        let generation = self.flows.health_generation();
        if generation != self.route_cache_gen {
            self.route_cache.clear();
            self.route_cache_gen = generation;
        }
        if let Some((route, detour)) = self.route_cache.get(&(src, dst)) {
            self.rerouted += u64::from(*detour);
            return route.clone();
        }
        // Prefer a currently healthy route. When the fabric has no path at
        // all right now, fall back to the pristine shortest path: the op
        // will wait in `Retrying` until a scheduled restore re-opens one.
        let pristine = msort_topology::route::route(&self.platform().topology, src, dst);
        let route = self
            .resolve_route(src, dst)
            .or_else(|| pristine.clone())
            .unwrap_or_else(|| panic!("no route from {src:?} to {dst:?}"));
        let detour = generation != 0 && pristine.as_ref() != Some(&route);
        self.rerouted += u64::from(detour);
        self.route_cache.insert((src, dst), (route.clone(), detour));
        route
    }

    /// Best route from `src` to `dst` over the *currently healthy* links.
    ///
    /// On a pristine fabric this is exactly the default shortest path. Once
    /// a fault has fired, GPU-to-GPU copies additionally consider relaying
    /// through each intermediate GPU (the multi-hop extension's routing)
    /// and pick the candidate with the highest single-flow rate under the
    /// health-adjusted capacities — so a severed NVLink falls back to the
    /// best of "another NVLink path" and "through the host".
    fn resolve_route(&self, src: Endpoint, dst: Endpoint) -> Option<Route> {
        let platform = self.platform();
        let topo = &platform.topology;
        let usable = |l: LinkId| self.flows.link_usable(l);
        let direct = msort_topology::route::route_with(topo, src, dst, usable);
        if self.flows.health_generation() == 0 {
            return direct;
        }
        if !matches!(
            (src, dst),
            (Endpoint::GpuMem { .. }, Endpoint::GpuMem { .. })
        ) {
            return direct;
        }
        let table = self.flows.constraint_table();
        let score =
            |r: &Route| msort_topology::allocate_rates(table, &[platform.flow_request(r)])[0];
        let mut best: Option<(Route, f64)> = direct.map(|r| {
            let s = score(&r);
            (r, s)
        });
        for via in 0..topo.gpu_count() {
            if let Some(r) = msort_topology::route::route_via_with(topo, src, dst, via, usable) {
                let s = score(&r);
                if best.as_ref().is_none_or(|&(_, b)| s > b) {
                    best = Some((r, s));
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Enqueue a copy along an *explicit* route instead of the default
    /// shortest path — the mechanism behind multi-hop P2P routing (paper
    /// Section 7): a pipelined relay through an intermediate GPU occupies
    /// every hop of the relay path simultaneously, which is exactly a
    /// fluid flow over the concatenated route.
    ///
    /// # Panics
    /// Panics if the route's endpoints do not match the buffer locations.
    #[allow(clippy::too_many_arguments)] // mirrors memcpy's shape plus the route
    pub fn memcpy_route(
        &mut self,
        stream: StreamId,
        route: Route,
        src: BufId,
        src_off: u64,
        dst: BufId,
        dst_off: u64,
        len: u64,
        waits: &[OpId],
        phase: Phase,
    ) -> OpId {
        assert_eq!(
            route.src,
            self.world.location(src).endpoint(),
            "route source must match the source buffer"
        );
        assert_eq!(
            route.dst,
            self.world.location(dst).endpoint(),
            "route destination must match the destination buffer"
        );
        self.push_op(
            stream,
            waits,
            OpKind::Transfer {
                route,
                src: (src, src_off),
                dst: (dst, dst_off),
                len,
            },
            phase,
        )
    }

    /// Enqueue an on-GPU k-way merge: the sorted runs described by
    /// `inputs` (buffer, offset, len — all on the same GPU) merge into
    /// `dst[..total]`. Modeled as a pairwise merge tree
    /// (`⌈log₂ k⌉` bandwidth-bound passes), functionally executed with the
    /// loser tree. Used by the radix-partitioned sort extension.
    pub fn gpu_multiway_merge(
        &mut self,
        stream: StreamId,
        inputs: Vec<(BufId, u64, u64)>,
        dst: BufId,
        waits: &[OpId],
    ) -> OpId {
        let gpu = match self.world.location(dst) {
            Location::Gpu { index } => index,
            Location::Host { .. } => panic!("gpu_multiway_merge requires device buffers"),
        };
        let model = self.platform().topology.gpu_model(gpu);
        let total: u64 = inputs.iter().map(|&(_, _, l)| l).sum();
        let passes = (inputs.len().max(2) as f64).log2().ceil() as u32;
        let single = self.cost.gpu_merge(model, total * K::DATA_TYPE.key_bytes());
        let duration = SimDuration(single.0 * u64::from(passes.max(1)));
        self.push_op(
            stream,
            waits,
            OpKind::Fixed {
                duration,
                effect: Effect::DeviceMultiwayMerge { inputs, dst },
            },
            Phase::Merge,
        )
    }

    /// Enqueue an on-GPU sort of `data[range]` with auxiliary buffer `aux`.
    pub fn gpu_sort(
        &mut self,
        stream: StreamId,
        algo: GpuSortAlgo,
        data: BufId,
        range: (u64, u64),
        aux: BufId,
        waits: &[OpId],
    ) -> OpId {
        let gpu = match self.world.location(data) {
            Location::Gpu { index } => index,
            Location::Host { .. } => panic!("gpu_sort requires a device buffer"),
        };
        debug_assert_eq!(self.world.location(aux), Location::Gpu { index: gpu });
        let model = self.platform().topology.gpu_model(gpu);
        let duration = self
            .cost
            .gpu_sort(model, algo, K::DATA_TYPE, range.1 - range.0);
        self.push_op(
            stream,
            waits,
            OpKind::Fixed {
                duration,
                effect: Effect::DeviceSort {
                    algo,
                    data,
                    range,
                    aux,
                },
            },
            Phase::Sort,
        )
    }

    /// Enqueue an on-GPU splitter partition of `data[range]`: the keys are
    /// stably scattered into `buckets = splitters.len() + 1` contiguous
    /// runs via `aux` (sample sort's local partition pass — one histogram
    /// pass plus one scatter pass, bandwidth-bound like a merge).
    /// Splitters are `(key, sample position)` pairs; comparison is
    /// lexicographic on the radix image so duplicate-heavy inputs still
    /// split evenly.
    pub fn gpu_partition(
        &mut self,
        stream: StreamId,
        data: BufId,
        range: (u64, u64),
        aux: BufId,
        splitters: Vec<(K, u64)>,
        waits: &[OpId],
    ) -> OpId {
        let gpu = match self.world.location(data) {
            Location::Gpu { index } => index,
            Location::Host { .. } => panic!("gpu_partition requires a device buffer"),
        };
        debug_assert_eq!(self.world.location(aux), Location::Gpu { index: gpu });
        let model = self.platform().topology.gpu_model(gpu);
        let duration = self
            .cost
            .gpu_partition(model, (range.1 - range.0) * K::DATA_TYPE.key_bytes());
        self.push_op(
            stream,
            waits,
            OpKind::Fixed {
                duration,
                effect: Effect::DevicePartition {
                    data,
                    range,
                    aux,
                    splitters,
                },
            },
            Phase::Partition,
        )
    }

    /// Enqueue a host-side splitter partition of `data[range]` into
    /// `buckets = splitters.len() + 1` contiguous runs via `aux` — the
    /// node-level bucket pass of the cross-node sort, run by the CPU over
    /// its staging buffer. Costed as one read pass plus one scatter
    /// (read + write) at the socket's combined stream rate.
    pub fn host_partition(
        &mut self,
        stream: StreamId,
        data: BufId,
        range: (u64, u64),
        aux: BufId,
        splitters: Vec<(K, u64)>,
        waits: &[OpId],
    ) -> OpId {
        assert!(
            matches!(self.world.location(data), Location::Host { .. }),
            "host_partition requires a host buffer"
        );
        debug_assert_eq!(self.world.location(aux), self.world.location(data));
        let bytes = (range.1 - range.0) * K::DATA_TYPE.key_bytes();
        let duration = SimDuration::from_secs_f64(3.0 * bytes as f64 / self.cost.cpu.merge_bw);
        self.push_op(
            stream,
            waits,
            OpKind::Fixed {
                duration,
                effect: Effect::DevicePartition {
                    data,
                    range,
                    aux,
                    splitters,
                },
            },
            Phase::Partition,
        )
    }

    /// Enqueue a local pairwise merge: the sorted runs `src[..mid]` and
    /// `src[mid..len]` merge into `dst[..len]` (the `thrust::merge`
    /// pattern of P2P sort's merge phase).
    pub fn gpu_merge_into(
        &mut self,
        stream: StreamId,
        src: BufId,
        mid: u64,
        len: u64,
        dst: BufId,
        waits: &[OpId],
    ) -> OpId {
        let gpu = match self.world.location(src) {
            Location::Gpu { index } => index,
            Location::Host { .. } => panic!("gpu_merge_into requires device buffers"),
        };
        let model = self.platform().topology.gpu_model(gpu);
        let duration = self.cost.gpu_merge(model, len * K::DATA_TYPE.key_bytes());
        self.push_op(
            stream,
            waits,
            OpKind::Fixed {
                duration,
                effect: Effect::DeviceMergeInto { src, mid, len, dst },
            },
            Phase::Merge,
        )
    }

    /// Enqueue a fixed-duration no-effect task (pivot-selection latency,
    /// modeled overheads).
    pub fn delay(
        &mut self,
        stream: StreamId,
        duration: SimDuration,
        waits: &[OpId],
        phase: Phase,
    ) -> OpId {
        self.push_op(
            stream,
            waits,
            OpKind::Fixed {
                duration,
                effect: Effect::None,
            },
            phase,
        )
    }

    /// Enqueue a CPU sort (PARADIS) of an entire host buffer.
    pub fn cpu_sort(&mut self, stream: StreamId, data: BufId, waits: &[OpId]) -> OpId {
        assert!(matches!(self.world.location(data), Location::Host { .. }));
        let n = self.world.buffer(data).len;
        let duration = self.cost.cpu_paradis(K::DATA_TYPE, n);
        self.push_op(
            stream,
            waits,
            OpKind::Fixed {
                duration,
                effect: Effect::HostSort { data },
            },
            Phase::Sort,
        )
    }

    /// Enqueue a CPU multiway merge of `inputs` (buffer, offset, len) into
    /// `output` starting at `out_off`. Modeled as a host-memory flow, so it
    /// competes with concurrent CPU-GPU transfers for memory bandwidth —
    /// the effect behind the paper's eager-merging result (Section 6.2).
    pub fn cpu_multiway_merge(
        &mut self,
        stream: StreamId,
        inputs: Vec<(BufId, u64, u64)>,
        output: BufId,
        out_off: u64,
        waits: &[OpId],
    ) -> OpId {
        let socket = match self.world.location(output) {
            Location::Host { socket } => socket,
            Location::Gpu { .. } => panic!("multiway merge output must be in host memory"),
        };
        let k = inputs.len().max(2);
        let lens: Vec<u64> = inputs.iter().map(|&(_, _, l)| l).collect();
        let out_bytes: u64 = lens.iter().sum::<u64>() * K::DATA_TYPE.key_bytes();
        let imbalance = self.cost.merge_imbalance_factor(&lens);
        self.push_op(
            stream,
            waits,
            OpKind::HostFlow {
                socket,
                // The merge reads + writes everything once.
                bytes: 2 * out_bytes,
                rate_cap: self.cost.cpu_merge_rate(k) * 2.0 / imbalance,
                effect: Effect::HostMultiwayMerge {
                    inputs,
                    output: (output, out_off),
                },
            },
            Phase::Merge,
        )
    }

    // ---- running ----------------------------------------------------

    /// Drive the simulation until every enqueued operation has completed.
    /// Returns the simulated time.
    ///
    /// # Panics
    /// Panics on a dependency deadlock (an op waits on something that can
    /// never fire).
    pub fn synchronize(&mut self) -> SimTime {
        self.run_inner(None, None)
    }

    /// Drive the simulation until any op in `until_any` completes or the
    /// clock reaches `deadline`, whichever comes first. An op that is
    /// already `Done` returns immediately; with an empty `until_any` the
    /// clock advances to the deadline, processing every event (including
    /// scheduled faults) on the way.
    ///
    /// This is the multi-job entry point: a scheduler holding several
    /// in-flight sorts on one shared system advances the single clock to
    /// its next decision point — a job frontier completing or a new job
    /// arriving — without draining the other jobs' work as
    /// [`GpuSystem::synchronize`] would.
    ///
    /// # Panics
    /// Panics when called without any stop condition, or when no deadline
    /// is given and the awaited ops can never complete.
    pub fn run_until(&mut self, until_any: &[OpId], deadline: Option<SimTime>) -> SimTime {
        assert!(
            !until_any.is_empty() || deadline.is_some(),
            "run_until needs at least one awaited op or a deadline"
        );
        self.run_inner(Some(until_any), deadline)
    }

    /// `true` once `op` has completed.
    #[must_use]
    pub fn op_done(&self, op: OpId) -> bool {
        self.op_done_idx(op.0)
    }

    /// `true` when every enqueued op has completed.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.ops.iter().all(|o| matches!(o.state, OpState::Done))
    }

    fn run_inner(&mut self, stop_ops: Option<&[OpId]>, deadline: Option<SimTime>) -> SimTime {
        loop {
            self.reissue_due_retries();
            self.start_ready_ops();
            if let Some(ops) = stop_ops {
                if ops.iter().any(|o| self.op_done(*o)) {
                    // Join in-flight effects before handing control back:
                    // the caller may read any buffer now.
                    self.exec.flush();
                    return self.flows.now();
                }
            }
            if deadline.is_some_and(|d| self.flows.now() >= d) {
                self.exec.flush();
                return self.flows.now();
            }
            // Next event: earliest fixed completion, flow completion, or
            // pending retry — each from its index (heap tops are validated
            // and stale entries dropped, never scanned).
            let mut next: Option<SimTime> = self.next_timer();
            if let Some(t) = self.next_retry() {
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            }
            if let Some((t, _)) = self.flows.next_completion() {
                if next.is_none_or(|n| t < n) {
                    next = Some(t);
                }
            }
            let Some(mut t) = next else {
                // Nothing running. With a deadline, idle-advance the clock
                // toward it (scheduled faults still fire on the way, one
                // step at a time so the loop re-checks state after each).
                if let Some(d) = deadline {
                    let step = match self.flows.next_fault_at() {
                        Some(tf) if tf < d => tf,
                        _ => d,
                    };
                    self.flows.advance_to(step);
                    continue;
                }
                // No deadline: either all done or deadlocked.
                let stuck: Vec<usize> = self
                    .ops
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| !matches!(o.state, OpState::Done))
                    .map(|(i, _)| self.ops_base + i)
                    .collect();
                // Join effects before panicking or returning: unwinding
                // must not race jobs holding raw views of the world.
                self.exec.flush();
                if stop_ops.is_some() {
                    panic!(
                        "run_until: nothing is running and none of the awaited ops \
                         completed (stuck ops: {stuck:?})"
                    );
                }
                assert!(
                    stuck.is_empty(),
                    "deadlock: ops {stuck:?} can never become ready"
                );
                return self.flows.now();
            };
            if let Some(d) = deadline {
                if t > d {
                    t = d;
                }
            }
            // Never step past a scheduled fault in one advance: completion
            // times predicted under pre-fault rates are only valid up to it.
            if let Some(tf) = self.flows.next_fault_at() {
                if tf < t {
                    t = tf;
                }
            }

            let finished_flows = self.flows.advance_to(t);
            // Transfers whose flow a link failure truncated go into backoff
            // before completing anything (their flows are *not* finished).
            self.handle_interrupted_flows();
            // Complete flow-backed ops.
            for fid in finished_flows {
                let idx = self
                    .flow_op
                    .remove(&fid)
                    .expect("finished flow belongs to an op");
                self.complete_op(idx, t);
            }
            // Complete fixed ops due now — pop the timer heap, which yields
            // due entries in (end, index) order: the same order as the old
            // ascending-index scan, because equal-time entries sort by
            // index and earlier-ending ones were completed in earlier
            // iterations.
            while let Some(&Reverse((e, idx))) = self.timers.peek() {
                if e > t {
                    break;
                }
                self.timers.pop();
                if idx >= self.ops_base
                    && matches!(self.op(idx).state,
                                OpState::Running { ends: Some(end), .. } if end == e)
                {
                    self.complete_op(idx, t);
                }
            }
            // With reclamation on, drop the completed prefix of the op ring
            // (spans and timelines for those ops are gone — see
            // `set_op_reclaim`).
            if self.reclaim_ops {
                while matches!(self.ops.front(), Some(o) if matches!(o.state, OpState::Done)) {
                    self.ops.pop_front();
                    self.ops_base += 1;
                }
            }
        }
    }

    /// Earliest live fixed-completion time; pops stale heap entries (op
    /// completed earlier, relaunched with a different end, or reclaimed).
    fn next_timer(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((e, idx))) = self.timers.peek() {
            let live = idx >= self.ops_base
                && matches!(self.op(idx).state,
                            OpState::Running { ends: Some(end), .. } if end == e);
            if live {
                return Some(e);
            }
            self.timers.pop();
        }
        None
    }

    /// Earliest live retry wakeup; pops stale entries like `next_timer`.
    fn next_retry(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, idx))) = self.retry_heap.peek() {
            let live = idx >= self.ops_base
                && matches!(self.op(idx).state, OpState::Retrying { at: a } if a == at);
            if live {
                return Some(at);
            }
            self.retry_heap.pop();
        }
        None
    }

    /// Put every op whose flow was truncated by a link failure into
    /// exponential (simulated-time) backoff; the re-issue happens in
    /// [`GpuSystem::reissue_due_retries`] once the backoff expires.
    fn handle_interrupted_flows(&mut self) {
        let now = self.flows.now();
        for (fid, remaining) in self.flows.take_interrupted() {
            let idx = self
                .flow_op
                .remove(&fid)
                .expect("interrupted flow belongs to an op");
            let attempts = {
                let op = self.op_mut(idx);
                op.attempts += 1;
                op.attempts
            };
            if attempts > MAX_TRANSFER_RETRIES {
                self.exec.flush();
                panic!(
                    "transfer op {idx} was interrupted {attempts} times; giving up\nlink health:\n{}",
                    self.flows
                        .health()
                        .map_or_else(String::new, |h| h.describe(&self.platform().topology))
                );
            }
            let backoff = SimDuration(RETRY_BACKOFF.0 << (attempts - 1));
            let at = now + backoff;
            let op = self.op_mut(idx);
            op.pending_bytes = Some(remaining);
            op.state = OpState::Retrying { at };
            self.retry_heap.push(Reverse((at, idx)));
            self.retries += 1;
        }
    }

    /// Re-issue every retrying transfer whose backoff has expired. Due
    /// entries are collected before any launch: a re-issue that finds the
    /// fabric still unroutable re-parks at the *same* next-fault instant,
    /// and draining the heap while launching would spin on it forever.
    /// One attempt per op per pass matches the old single scan.
    fn reissue_due_retries(&mut self) {
        let now = self.flows.now();
        let mut due = Vec::new();
        while let Some(&Reverse((at, idx))) = self.retry_heap.peek() {
            if at > now {
                break;
            }
            self.retry_heap.pop();
            // Lazy invalidation: stale entries (op since relaunched,
            // completed, or reclaimed) are dropped here.
            if idx >= self.ops_base
                && matches!(self.op(idx).state, OpState::Retrying { at: a } if a == at)
            {
                due.push(idx);
            }
        }
        for idx in due {
            self.launch_transfer(idx);
        }
    }

    fn push_op(&mut self, stream: StreamId, waits: &[OpId], kind: OpKind<K>, phase: Phase) -> OpId {
        let name = match &kind {
            OpKind::Transfer { .. } => "copy",
            OpKind::LocalCopy { .. } => "local copy",
            OpKind::Fixed { effect, .. } => effect.name(),
            OpKind::HostFlow { effect, .. } => effect.name(),
        };
        let id = OpId(self.ops_base + self.ops.len());
        // Register the dependency edges now: each unfinished wait gets a
        // subscriber entry pointing back at this op, and the blocker count
        // is what readiness checks against (O(1) per completion instead of
        // rescanning the wait list). A wait on this op itself or a
        // not-yet-enqueued op can never fire — count it as a permanent
        // blocker so `synchronize` reports the deadlock.
        let mut blockers = 0u32;
        for w in waits {
            if w.0 >= id.0 {
                blockers += 1;
            } else if !self.op_done_idx(w.0) {
                self.op_mut(w.0).subs.push(id.0);
                blockers += 1;
            }
        }
        self.ops.push_back(Op {
            stream,
            name,
            kind: Some(kind),
            state: OpState::Pending,
            phase,
            started: None,
            finished: None,
            blockers,
            subs: Vec::new(),
            staged: None,
            attempts: 0,
            pending_bytes: None,
        });
        self.streams[stream.0].ops.push(id);
        self.mark_dirty(stream.0);
        id
    }

    fn start_ready_ops(&mut self) {
        // Only streams touched since the last pass can have a newly
        // startable head: a stream goes dirty when an op is enqueued on it,
        // when its running head completes, or when a blocker of one of its
        // ops fires. Starting an op never *unblocks* another within the
        // same instant (zero-duration completions go through the outer
        // event loop), so one pass over the dirty set suffices. Sorted for
        // determinism: the old code visited streams in index order.
        if self.dirty_streams.is_empty() {
            return;
        }
        let mut work = std::mem::take(&mut self.dirty_streams);
        work.sort_unstable();
        for &s in &work {
            self.streams[s].dirty = false;
            // Skip completed ops at the queue head.
            while let Some(&op_id) = self.streams[s].ops.get(self.streams[s].next) {
                if self.op_done_idx(op_id.0) {
                    self.streams[s].next += 1;
                } else {
                    break;
                }
            }
            // Under op reclamation, drop the consumed queue prefix too —
            // amortized O(1) per op (each drain removes at least half the
            // queue), keeping per-stream memory at the live window.
            if self.reclaim_ops {
                let q = &mut self.streams[s];
                if q.next >= 64 && q.next * 2 >= q.ops.len() {
                    q.ops.drain(..q.next);
                    q.next = 0;
                }
            }
            // A stream runs one op at a time (CUDA stream semantics): the
            // head may start only when Pending and its waits fired.
            let Some(&op_id) = self.streams[s].ops.get(self.streams[s].next) else {
                continue;
            };
            let op = self.op(op_id.0);
            if matches!(op.state, OpState::Pending) && op.blockers == 0 {
                self.start_op(op_id);
            }
        }
        // Hand the buffer back without dropping dirties pushed mid-loop.
        work.clear();
        work.append(&mut self.dirty_streams);
        self.dirty_streams = work;
    }

    fn start_op(&mut self, id: OpId) {
        let now = self.flows.now();
        self.op_mut(id.0).started = Some(now);
        // Copies stage their source bytes now (see `Op::staged`). An
        // in-flight effect job may still be writing the source range, so
        // join the executor's writers on it first — the serial baseline
        // applied every effect before any later op could start.
        match self.op(id.0).kind.as_ref().expect("op has a kind") {
            OpKind::Transfer { src, len, .. } | OpKind::LocalCopy { src, len, .. } => {
                let (src, len) = ((src.0, src.1), *len);
                let so = self.world.physical(src.1);
                let l = self.world.physical(len);
                self.exec.wait_writes(src.0 .0, so, so + l);
                let snapshot = self.world.slice(src.0, src.1, len).to_vec();
                self.op_mut(id.0).staged = Some(snapshot);
            }
            _ => {}
        }
        if matches!(self.op(id.0).kind, Some(OpKind::Transfer { .. })) {
            self.launch_transfer(id.0);
            return;
        }
        let kind = self.op(id.0).kind.as_ref().expect("op has a kind");
        let state = match kind {
            OpKind::Transfer { .. } => unreachable!("transfers launch above"),
            OpKind::LocalCopy { duration, .. } | OpKind::Fixed { duration, .. } => {
                OpState::Running {
                    ends: Some(now + *duration),
                }
            }
            OpKind::HostFlow {
                socket,
                bytes,
                rate_cap,
                ..
            } => {
                // The flow's byte count is *total* memory traffic (reads +
                // writes), so it loads the read and write caps with weight
                // 1/2 each (half the traffic goes each way) and the
                // combined cap with weight 1.
                let route = Route {
                    src: msort_topology::Endpoint::HostMem { socket: *socket },
                    dst: msort_topology::Endpoint::HostMem { socket: *socket },
                    hops: Vec::new(),
                };
                let table = self.platform().constraint_table();
                let mut constraints = table.route_constraints(&self.platform().topology, &route);
                let mut seen_combined = false;
                constraints.retain_mut(|(id, weight)| {
                    use msort_topology::constraint::ConstraintKind as CK;
                    match table.constraints()[id.0].kind {
                        CK::MemRead { .. } | CK::MemWrite { .. } => {
                            *weight = 0.5;
                            true
                        }
                        CK::MemCombined { .. } => {
                            let keep = !seen_combined;
                            seen_combined = true;
                            keep
                        }
                        _ => true,
                    }
                });
                let request = FlowRequest {
                    constraints,
                    rate_cap: Some(*rate_cap),
                };
                let flow = self.flows.start_request(request, *bytes);
                self.flow_op.insert(flow, id.0);
                OpState::Running { ends: None }
            }
        };
        if let OpState::Running { ends: Some(e), .. } = state {
            self.timers.push(Reverse((e, id.0)));
        }
        self.op_mut(id.0).state = state;
    }

    /// Start (or re-start after an interruption) the flow backing a
    /// transfer op. If the op's planned route crosses a failed link, the
    /// route is re-resolved over the healthy fabric first; if no path
    /// exists at all, the op parks in `Retrying` until the next scheduled
    /// fault event (a restore may re-open one).
    fn launch_transfer(&mut self, idx: usize) {
        let now = self.flows.now();
        let (route, len) = match self.op(idx).kind.as_ref().expect("op has a kind") {
            OpKind::Transfer { route, len, .. } => (route.clone(), *len),
            _ => unreachable!("launch_transfer drives transfer ops only"),
        };
        let bytes = self
            .op(idx)
            .pending_bytes
            .unwrap_or(len * K::DATA_TYPE.key_bytes());
        if bytes == 0 {
            self.op_mut(idx).state = OpState::Running { ends: Some(now) };
            self.timers.push(Reverse((now, idx)));
            return;
        }
        let route = if self.flows.route_usable(&route) {
            route
        } else if let Some(r) = self.resolve_route(route.src, route.dst) {
            self.rerouted += 1;
            if let Some(OpKind::Transfer { route: stored, .. }) = self.op_mut(idx).kind.as_mut() {
                *stored = r.clone();
            }
            r
        } else {
            // No usable path right now. A scheduled restore may re-open one;
            // park until the next fault event and try again then.
            let Some(at) = self.flows.next_fault_at() else {
                panic!(
                    "transfer op {idx} has no usable route and no scheduled restore\nlink health:\n{}",
                    self.flows
                        .health()
                        .map_or_else(String::new, |h| h.describe(&self.platform().topology))
                );
            };
            self.op_mut(idx).state = OpState::Retrying { at };
            self.retry_heap.push(Reverse((at, idx)));
            return;
        };
        let flow = self.flows.start(&route, bytes);
        self.flow_op.insert(flow, idx);
        self.op_mut(idx).state = OpState::Running { ends: None };
    }

    fn complete_op(&mut self, idx: usize, t: SimTime) {
        {
            let op = self.op_mut(idx);
            op.state = OpState::Done;
            op.finished = Some(t);
        }
        // Wake the dependents: each subscriber loses a blocker; a stream
        // whose op may now be startable (this op's own successor, or a
        // subscriber that just became unblocked) goes on the dirty list.
        let stream = self.op(idx).stream.0;
        self.mark_dirty(stream);
        let subs = std::mem::take(&mut self.op_mut(idx).subs);
        for sub in subs {
            let op = self.op_mut(sub);
            op.blockers -= 1;
            if op.blockers == 0 {
                let s = op.stream.0;
                self.mark_dirty(s);
            }
        }
        if self.log_completions {
            self.completion_log.push(OpId(idx));
        }
        if self.recorder.is_enabled() {
            let sid = self.op(idx).stream.0;
            while self.rec_stream_tracks.len() <= sid {
                let n = self.rec_stream_tracks.len();
                self.rec_stream_tracks
                    .push(self.recorder.track(groups::GPU, &format!("stream {n}")));
            }
            let op = self.op(idx);
            self.recorder.span(
                self.rec_stream_tracks[sid],
                op.name,
                op.phase.label(),
                op.started.expect("completed op has started").0,
                t.0,
            );
        }
        let kind = self.op_mut(idx).kind.take().expect("op completes once");
        match kind {
            OpKind::Transfer { dst, len, .. } | OpKind::LocalCopy { dst, len, .. } => {
                let staged = self
                    .op_mut(idx)
                    .staged
                    .take()
                    .expect("copy staged its source");
                let dst_off = self.world.physical(dst.1);
                let l = self.world.physical(len);
                if l == 0 {
                    return;
                }
                let out = RawSlice::new(&mut self.world.data_mut(dst.0)[dst_off..dst_off + l]);
                self.exec.submit(
                    vec![Access {
                        buf: dst.0 .0,
                        lo: dst_off,
                        hi: dst_off + l,
                        write: true,
                    }],
                    move || {
                        // SAFETY: the job's write access covers exactly this
                        // range; the executor serializes conflicting jobs and
                        // the system flushes before the buffer is read/freed.
                        crate::buffer::par_copy(unsafe { out.as_mut() }, &staged[..l]);
                    },
                );
            }
            OpKind::Fixed { effect, .. } | OpKind::HostFlow { effect, .. } => {
                self.submit_effect(effect);
            }
        }
    }

    /// Enqueue an effect on the wall-clock executor, tagged with the
    /// physical buffer ranges it reads and writes. In serial mode
    /// (`set_effect_threads(1)`) the job runs inline right here, which is
    /// exactly the seed executor's behavior. The kernels always chunk by
    /// the process-wide pool thread count, so the bytes produced do not
    /// depend on the effect-level schedule.
    fn submit_effect(&mut self, effect: Effect<K>) {
        let threads = msort_cpu::pool::threads();
        match effect {
            Effect::None | Effect::Marker(_) => {}
            Effect::DeviceSort {
                algo,
                data,
                range,
                aux,
            } => {
                let lo = self.world.physical(range.0);
                let hi = self.world.physical(range.1);
                let n = hi - lo;
                if n == 0 {
                    return;
                }
                let (d, a) = self.world.two_mut(data, aux);
                let d = RawSlice::new(&mut d[lo..hi]);
                let a = RawSlice::new(&mut a[..n]);
                self.exec.submit(
                    vec![
                        Access {
                            buf: data.0,
                            lo,
                            hi,
                            write: true,
                        },
                        Access {
                            buf: aux.0,
                            lo: 0,
                            hi: n,
                            write: true,
                        },
                    ],
                    move || {
                        // SAFETY: write accesses cover both views (see above).
                        primitives::device_sort_with(
                            algo,
                            unsafe { d.as_mut() },
                            unsafe { a.as_mut() },
                            threads,
                        );
                    },
                );
            }
            Effect::DeviceMergeInto { src, mid, len, dst } => {
                let m = self.world.physical(mid);
                let l = self.world.physical(len);
                if l == 0 {
                    return;
                }
                let (s, d) = self.world.two_mut(src, dst);
                let s = RawSliceConst::new(&s[..l]);
                let d = RawSlice::new(&mut d[..l]);
                self.exec.submit(
                    vec![
                        Access {
                            buf: src.0,
                            lo: 0,
                            hi: l,
                            write: false,
                        },
                        Access {
                            buf: dst.0,
                            lo: 0,
                            hi: l,
                            write: true,
                        },
                    ],
                    move || {
                        // SAFETY: read access on src, write access on dst.
                        primitives::device_merge_into_with(
                            unsafe { s.as_ref() },
                            m,
                            unsafe { d.as_mut() },
                            threads,
                        );
                    },
                );
            }
            Effect::HostSort { data } => {
                let buf = self.world.data_mut(data);
                let n = buf.len();
                let d = RawSlice::new(buf);
                self.exec.submit(
                    vec![Access {
                        buf: data.0,
                        lo: 0,
                        hi: n,
                        write: true,
                    }],
                    move || {
                        // SAFETY: write access covers the whole buffer.
                        msort_cpu::parallel_sort(unsafe { d.as_mut() });
                    },
                );
            }
            Effect::HostMultiwayMerge { inputs, output } => {
                let out_off = self.world.physical(output.1);
                self.submit_multiway_merge(inputs, output.0, out_off, threads);
            }
            Effect::DeviceMultiwayMerge { inputs, dst } => {
                self.submit_multiway_merge(inputs, dst, 0, threads);
            }
            Effect::DevicePartition {
                data,
                range,
                aux,
                splitters,
            } => {
                let lo = self.world.physical(range.0);
                let hi = self.world.physical(range.1);
                let n = hi - lo;
                if n == 0 {
                    return;
                }
                let (d, a) = self.world.two_mut(data, aux);
                let d = RawSlice::new(&mut d[lo..hi]);
                let a = RawSlice::new(&mut a[..n]);
                self.exec.submit(
                    vec![
                        Access {
                            buf: data.0,
                            lo,
                            hi,
                            write: true,
                        },
                        Access {
                            buf: aux.0,
                            lo: 0,
                            hi: n,
                            write: true,
                        },
                    ],
                    move || {
                        // SAFETY: write accesses cover both views (see above).
                        primitives::device_partition_with(
                            unsafe { d.as_mut() },
                            unsafe { a.as_mut() },
                            &splitters,
                            threads,
                        );
                    },
                );
            }
        }
    }

    /// Shared zero-copy path for host and device multiway merges: input
    /// windows are *borrowed* from the world (the seed copied every run
    /// with `to_vec()`); only a window that physically overlaps the output
    /// range is materialized inside the job, because the merge would
    /// otherwise overwrite unread input.
    fn submit_multiway_merge(
        &mut self,
        inputs: Vec<(BufId, u64, u64)>,
        out_buf: BufId,
        out_off: usize,
        threads: usize,
    ) {
        let mut accesses = Vec::with_capacity(inputs.len() + 1);
        let mut views: Vec<RawSliceConst<K>> = Vec::with_capacity(inputs.len());
        let mut total = 0usize;
        for &(b, off, len) in &inputs {
            let window = self.world.slice(b, off, len);
            total += window.len();
            accesses.push(Access {
                buf: b.0,
                lo: self.world.physical(off),
                hi: self.world.physical(off) + window.len(),
                write: false,
            });
            views.push(RawSliceConst::new(window));
        }
        if total == 0 {
            return;
        }
        accesses.push(Access {
            buf: out_buf.0,
            lo: out_off,
            hi: out_off + total,
            write: true,
        });
        let out = RawSlice::new(&mut self.world.data_mut(out_buf)[out_off..out_off + total]);
        self.exec.submit(accesses, move || {
            // SAFETY: read accesses cover every input window, the write
            // access covers the output range; conflicting jobs are ordered.
            let out = unsafe { out.as_mut() };
            let out_lo = out.as_ptr() as usize;
            let out_hi = out_lo + std::mem::size_of_val::<[K]>(out);
            // Inputs overlapping the output (in-place merges within one
            // buffer) are copied out first; disjoint ones are borrowed.
            let owned: Vec<Option<Vec<K>>> = views
                .iter()
                .map(|v| {
                    let (lo, hi) = v.byte_range();
                    // SAFETY: read access covers the window.
                    (lo < out_hi && out_lo < hi).then(|| unsafe { v.as_ref() }.to_vec())
                })
                .collect();
            let refs: Vec<&[K]> = views
                .iter()
                .zip(&owned)
                .map(|(v, o)| match o {
                    Some(copy) => copy.as_slice(),
                    // SAFETY: read access covers the window.
                    None => unsafe { v.as_ref() },
                })
                .collect();
            parallel_multiway_merge_with(
                &refs,
                out,
                ParallelMergeConfig {
                    threads,
                    ..Default::default()
                },
            );
        });
    }
}

impl<K: SortKey> Drop for GpuSystem<'_, K> {
    fn drop(&mut self) {
        // Effect jobs hold raw views of `self.world`; they must finish
        // before the world's buffers drop. Quiet: propagating a job panic
        // while already unwinding would abort.
        self.exec.quiet_flush();
    }
}

/// Total time covered by at least one of `intervals` (the busy-time union
/// behind [`GpuSystem::phase_busy`] and [`GpuSystem::ops_busy`]).
fn interval_union(mut intervals: Vec<(SimTime, SimTime)>) -> SimDuration {
    intervals.sort_unstable();
    let mut total = SimDuration::ZERO;
    let mut cursor: Option<(SimTime, SimTime)> = None;
    for (s, e) in intervals {
        match cursor {
            None => cursor = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    cursor = Some((cs, ce.max(e)));
                } else {
                    total += ce.since(cs);
                    cursor = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = cursor {
        total += ce.since(cs);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};
    use msort_topology::Platform;

    fn system(platform: &Platform) -> GpuSystem<'_, u32> {
        GpuSystem::new(platform, Fidelity::Full)
    }

    #[test]
    fn htod_sort_dtoh_roundtrip() {
        let p = Platform::test_pcie(1);
        let mut sys = system(&p);
        let input: Vec<u32> = generate(Distribution::Uniform, 4096, 7);
        let host = sys.world_mut().import_host(0, input.clone(), 4096);
        let out = sys.world_mut().alloc_host(0, 4096);
        let dev = sys.world_mut().alloc_gpu(0, 4096);
        let aux = sys.world_mut().alloc_gpu(0, 4096);
        let s = sys.stream();
        let up = sys.memcpy(s, host, 0, dev, 0, 4096, &[], Phase::HtoD);
        let sort = sys.gpu_sort(s, GpuSortAlgo::ThrustLike, dev, (0, 4096), aux, &[up]);
        sys.memcpy(s, dev, 0, out, 0, 4096, &[sort], Phase::DtoH);
        let end = sys.synchronize();
        assert!(end > SimTime::ZERO);
        let sorted = sys.world().slice(out, 0, 4096).to_vec();
        assert!(is_sorted(&sorted));
        assert!(same_multiset(&input, &sorted));
    }

    #[test]
    fn stream_order_is_fifo() {
        let p = Platform::test_pcie(1);
        let mut sys = system(&p);
        let a = sys.world_mut().import_host(0, vec![1u32; 1024], 1024);
        let dev = sys.world_mut().alloc_gpu(0, 1024);
        let s = sys.stream();
        let op1 = sys.memcpy(s, a, 0, dev, 0, 1024, &[], Phase::HtoD);
        let op2 = sys.memcpy(s, dev, 0, a, 0, 1024, &[], Phase::DtoH);
        sys.synchronize();
        let (s1, e1) = sys.op_span(op1).unwrap();
        let (s2, _) = sys.op_span(op2).unwrap();
        assert!(s1 < s2);
        assert!(e1 <= s2, "op2 must not start before op1 completes");
    }

    #[test]
    fn cross_stream_ops_overlap() {
        let p = Platform::test_pcie(2);
        let mut sys = system(&p);
        let h = sys.world_mut().import_host(0, vec![3u32; 1 << 20], 1 << 20);
        let d0 = sys.world_mut().alloc_gpu(0, 1 << 20);
        let d1 = sys.world_mut().alloc_gpu(1, 1 << 20);
        let s0 = sys.stream();
        let s1 = sys.stream();
        let a = sys.memcpy(s0, h, 0, d0, 0, 1 << 20, &[], Phase::HtoD);
        let b = sys.memcpy(s1, h, 0, d1, 0, 1 << 20, &[], Phase::HtoD);
        sys.synchronize();
        let (sa, ea) = sys.op_span(a).unwrap();
        let (sb, eb) = sys.op_span(b).unwrap();
        assert_eq!(sa, sb, "independent streams start together");
        // Independent 13 GB/s links: same duration.
        assert_eq!(ea, eb);
    }

    #[test]
    fn waits_across_streams_are_honored() {
        let p = Platform::test_pcie(2);
        let mut sys = system(&p);
        let h = sys.world_mut().import_host(0, vec![9u32; 4096], 4096);
        let d0 = sys.world_mut().alloc_gpu(0, 4096);
        let d1 = sys.world_mut().alloc_gpu(1, 4096);
        let s0 = sys.stream();
        let s1 = sys.stream();
        let a = sys.memcpy(s0, h, 0, d0, 0, 4096, &[], Phase::HtoD);
        let b = sys.memcpy(s1, h, 0, d1, 0, 4096, &[a], Phase::HtoD);
        sys.synchronize();
        let (_, ea) = sys.op_span(a).unwrap();
        let (sb, _) = sys.op_span(b).unwrap();
        assert!(sb >= ea);
    }

    #[test]
    fn p2p_copy_moves_data() {
        let p = Platform::dgx_a100();
        let mut sys = system(&p);
        let d0 = sys.world_mut().alloc_gpu(0, 1024);
        let d5 = sys.world_mut().alloc_gpu(5, 1024);
        // Put recognizable data on GPU 0 without a host transfer.
        let h = sys
            .world_mut()
            .import_host(0, (0..1024u32).rev().collect(), 1024);
        let s = sys.stream();
        let up = sys.memcpy(s, h, 0, d0, 0, 1024, &[], Phase::HtoD);
        sys.memcpy(s, d0, 0, d5, 0, 1024, &[up], Phase::Merge);
        sys.synchronize();
        assert_eq!(sys.world().slice(d5, 0, 3), &[1023, 1022, 1021]);
    }

    #[test]
    fn dtod_local_copy_is_fast() {
        let p = Platform::dgx_a100();
        let mut sys = system(&p);
        let d0 = sys.world_mut().alloc_gpu(0, 1 << 22);
        let d0b = sys.world_mut().alloc_gpu(0, 1 << 22);
        let s = sys.stream();
        let local = sys.memcpy(s, d0, 0, d0b, 0, 1 << 22, &[], Phase::Merge);
        sys.synchronize();
        let (st, en) = sys.op_span(local).unwrap();
        // 16 MiB at 840 GB/s: ~20 us.
        let secs = (en - st).as_secs_f64();
        assert!(secs < 1e-4, "{secs}");
        assert!(secs > 0.0);
    }

    #[test]
    fn cpu_multiway_merge_effect_and_duration() {
        let p = Platform::dgx_a100();
        let mut sys = system(&p);
        let mut runs: Vec<u32> = Vec::new();
        let a: Vec<u32> = (0..512).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..512).map(|x| x * 2 + 1).collect();
        runs.extend_from_slice(&a);
        runs.extend_from_slice(&b);
        let src = sys.world_mut().import_host(0, runs, 1024);
        let out = sys.world_mut().alloc_host(0, 1024);
        let s = sys.stream();
        sys.cpu_multiway_merge(s, vec![(src, 0, 512), (src, 512, 512)], out, 0, &[]);
        let end = sys.synchronize();
        assert!(end > SimTime::ZERO);
        let merged = sys.world().slice(out, 0, 1024).to_vec();
        assert!(is_sorted(&merged));
        assert_eq!(merged[0], 0);
        assert_eq!(merged[1023], 1023);
    }

    #[test]
    fn cpu_sort_sorts_host_buffer() {
        let p = Platform::ibm_ac922();
        let mut sys = system(&p);
        let input: Vec<u32> = generate(Distribution::ReverseSorted, 2048, 3);
        let h = sys.world_mut().import_host(0, input.clone(), 2048);
        let s = sys.stream();
        sys.cpu_sort(s, h, &[]);
        sys.synchronize();
        let sorted = sys.world().slice(h, 0, 2048).to_vec();
        assert!(is_sorted(&sorted));
        assert!(same_multiset(&input, &sorted));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn circular_wait_panics() {
        let p = Platform::test_pcie(1);
        let mut sys = system(&p);
        let h = sys.world_mut().import_host(0, vec![1u32; 16], 16);
        let d = sys.world_mut().alloc_gpu(0, 16);
        let s0 = sys.stream();
        let s1 = sys.stream();
        // op_b waits on op_c which is behind op_b's... build a cross-stream
        // cycle: b (s0) waits on c (s1); c waits on b.
        let b_id = OpId(0);
        let c = sys.memcpy(s1, h, 0, d, 0, 16, &[b_id], Phase::HtoD);
        let _b = sys.memcpy(s0, h, 0, d, 0, 16, &[c], Phase::HtoD);
        sys.synchronize();
    }

    #[test]
    fn sampled_fidelity_sorts_sample() {
        let p = Platform::test_pcie(1);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Sampled { scale: 4 });
        let sample: Vec<u32> = generate(Distribution::Uniform, 256, 5);
        let h = sys.world_mut().import_host(0, sample, 1024);
        let d = sys.world_mut().alloc_gpu(0, 1024);
        let aux = sys.world_mut().alloc_gpu(0, 1024);
        let s = sys.stream();
        let up = sys.memcpy(s, h, 0, d, 0, 1024, &[], Phase::HtoD);
        let so = sys.gpu_sort(s, GpuSortAlgo::CubLike, d, (0, 1024), aux, &[up]);
        sys.memcpy(s, d, 0, h, 0, 1024, &[so], Phase::DtoH);
        sys.synchronize();
        assert!(is_sorted(sys.world().slice(h, 0, 1024)));
        assert_eq!(sys.world().buffer(h).data.len(), 256);
    }

    #[test]
    fn link_down_mid_transfer_retries_after_restore() {
        // One GPU on a single PCIe uplink: kill the only link mid-copy, the
        // transfer must park (no alternative route) and finish after the
        // scheduled restore with the data intact.
        let p = Platform::test_pcie(1);
        let mut sys = system(&p);
        let n: u64 = 1 << 20;
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 11);
        let h = sys.world_mut().import_host(0, input.clone(), n);
        let d = sys.world_mut().alloc_gpu(0, n);
        let topo = &p.topology;
        let link = topo.link_between(topo.cpu(0), topo.gpu(0)).unwrap();
        let plan = FaultPlan::new()
            .link_down(SimTime(50_000), link)
            .link_restore(SimTime(400_000), link);
        sys.schedule_faults(&plan);
        let s = sys.stream();
        sys.memcpy(s, h, 0, d, 0, n, &[], Phase::HtoD);
        let end = sys.synchronize();
        assert!(sys.transfer_retries() >= 1, "the copy must be interrupted");
        assert_eq!(sys.rerouted_transfers(), 0, "only one possible route");
        assert!(end > SimTime(400_000), "must finish after the restore");
        assert_eq!(sys.world().slice(d, 0, n), &input[..]);
    }

    #[test]
    fn nvlink_failure_reroutes_p2p_copy() {
        // DELTA's 0--2 NVLink dies while a 0->2 P2P copy is in flight: the
        // retry must come back on a different (relay or host) route and
        // still deliver the bytes.
        let p = Platform::delta_d22x();
        let mut sys = system(&p);
        let n: u64 = 1 << 20;
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 13);
        let h = sys.world_mut().import_host(0, input.clone(), n);
        let d0 = sys.world_mut().alloc_gpu(0, n);
        let d2 = sys.world_mut().alloc_gpu(2, n);
        let topo = &p.topology;
        let link = topo.link_between(topo.gpu(0), topo.gpu(2)).unwrap();
        let s = sys.stream();
        let up = sys.memcpy(s, h, 0, d0, 0, n, &[], Phase::HtoD);
        sys.synchronize();
        // Kill the link a third of the way into the P2P copy.
        let start = sys.now();
        sys.schedule_faults(&FaultPlan::new().link_down(SimTime(start.0 + 30_000), link));
        sys.memcpy(s, d0, 0, d2, 0, n, &[up], Phase::Merge);
        sys.synchronize();
        assert!(sys.transfer_retries() >= 1, "the copy must be interrupted");
        assert!(
            sys.rerouted_transfers() >= 1,
            "the retry must take a different route"
        );
        assert_eq!(sys.world().slice(d2, 0, n), &input[..]);
    }

    #[test]
    fn degraded_link_slows_transfer_down() {
        let n: u64 = 1 << 20;
        let mut ends = Vec::new();
        for degrade in [false, true] {
            let p = Platform::test_pcie(1);
            let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
            let h = sys.world_mut().import_host(0, vec![5u32; n as usize], n);
            let d = sys.world_mut().alloc_gpu(0, n);
            if degrade {
                let link = p
                    .topology
                    .link_between(p.topology.cpu(0), p.topology.gpu(0));
                sys.schedule_faults(&FaultPlan::new().link_degrade(SimTime(1), link.unwrap(), 0.5));
            }
            let s = sys.stream();
            sys.memcpy(s, h, 0, d, 0, n, &[], Phase::HtoD);
            ends.push(sys.synchronize());
            assert_eq!(sys.world().slice(d, 0, 4), &[5, 5, 5, 5]);
        }
        assert!(
            ends[1] > ends[0],
            "half capacity must not be faster: {ends:?}"
        );
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let mut ends = Vec::new();
        for schedule in [false, true] {
            let p = Platform::dgx_a100();
            let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
            let h = sys.world_mut().import_host(0, vec![7u32; 4096], 4096);
            let d = sys.world_mut().alloc_gpu(0, 4096);
            if schedule {
                sys.schedule_faults(&FaultPlan::new());
            }
            let s = sys.stream();
            sys.memcpy(s, h, 0, d, 0, 4096, &[], Phase::HtoD);
            ends.push(sys.synchronize());
            assert_eq!(sys.transfer_retries(), 0);
            assert_eq!(sys.rerouted_transfers(), 0);
        }
        assert_eq!(ends[0], ends[1]);
    }

    #[test]
    fn timing_independent_of_fidelity() {
        // The same workload at full and sampled fidelity must produce the
        // same simulated duration (timing uses logical bytes only).
        let p = Platform::ibm_ac922();
        let mut end_times = Vec::new();
        for fidelity in [Fidelity::Full, Fidelity::Sampled { scale: 16 }] {
            let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, fidelity);
            let n: u64 = 1 << 20;
            let phys = (n / fidelity.scale()) as usize;
            let h = sys
                .world_mut()
                .import_host(0, generate(Distribution::Uniform, phys, 9), n);
            let d = sys.world_mut().alloc_gpu(0, n);
            let aux = sys.world_mut().alloc_gpu(0, n);
            let s = sys.stream();
            let up = sys.memcpy(s, h, 0, d, 0, n, &[], Phase::HtoD);
            let so = sys.gpu_sort(s, GpuSortAlgo::ThrustLike, d, (0, n), aux, &[up]);
            sys.memcpy(s, d, 0, h, 0, n, &[so], Phase::DtoH);
            end_times.push(sys.synchronize());
        }
        assert_eq!(end_times[0], end_times[1]);
    }
}
