//! Functional device primitives.
//!
//! Each modeled GPU sort algorithm (paper Table 2) is backed by a real
//! implementation of the same algorithm *family* from `msort-cpu`, so the
//! simulated run produces genuinely sorted data via genuinely different
//! code paths:
//!
//! | Modeled primitive | Functional implementation |
//! |---|---|
//! | Thrust (LSB radix, decoupled lookback) | [`msort_cpu::onesweep`] (single-pass histogram, chained-lookback scatter) with caller-provided auxiliary buffer |
//! | CUB (same kernel family as Thrust) | [`msort_cpu::onesweep`] |
//! | Stehle & Jacobsen (MSB radix) | [`msort_cpu::msb_radix`] (in-place cycle chasing) |
//! | ModernGPU (merge sort) | [`msort_cpu::mergesort`] (merge-path splits) |
//!
//! The *duration* of each primitive comes from the calibrated cost model;
//! the data effect comes from these functions. OneSweep and the classic
//! LSB radix it replaced are both stable LSD sorts, so this rewiring is
//! invisible in the output — only the wall clock moves.

use msort_cpu::{mergesort, msb_radix, paradis};
use msort_data::SortKey;
use msort_sim::GpuSortAlgo;

/// Inputs at or above this many physical keys run the parallel kernel
/// variants; below it the sequential implementations win on dispatch
/// overhead. The dispatch depends only on the input *size* (never on the
/// thread count), so a given buffer always takes the same code path.
///
/// Re-tuned for the OneSweep kernel: 64 Ki keys is exactly two OneSweep
/// scatter tiles (`msort_cpu::onesweep`, 32 Ki-key tiles) — the smallest
/// input where the chained-lookback scatter has any overlap to exploit,
/// so the floor is structural rather than a taste constant. Probe numbers
/// from `cargo run -p msort-bench --release --example tune` on the 1-core
/// CI container: sequential OneSweep runs 64 Ki u32 keys in ~480 µs and
/// the parallel entry's overhead at pool width 1 is within noise (≤2%) at
/// every size from 16 Ki to 1 Mi, while a 2-wide pool on one hardware
/// thread is pure oversubscription (~1.4x slower) — i.e. on this box the
/// floor only needs to bound dispatch overhead, and it does; the
/// parallel win itself needs real cores.
pub const PARALLEL_MIN_KEYS: usize = 1 << 16;

/// Sort `data` in place with the functional counterpart of `algo`, using
/// `aux` as scratch where the algorithm requires it (mirroring
/// `thrust::sort`'s user-provided temporary storage).
pub fn device_sort<K: SortKey>(algo: GpuSortAlgo, data: &mut [K], aux: &mut [K]) {
    device_sort_with(algo, data, aux, msort_cpu::pool::threads());
}

/// [`device_sort`] with an explicit worker budget. Above
/// [`PARALLEL_MIN_KEYS`] each algorithm family dispatches to its parallel
/// counterpart (a real GPU runs these kernels on thousands of threads;
/// the wall-clock engine runs them on the shared worker pool).
pub fn device_sort_with<K: SortKey>(
    algo: GpuSortAlgo,
    data: &mut [K],
    aux: &mut [K],
    threads: usize,
) {
    let parallel = threads > 1 && data.len() >= PARALLEL_MIN_KEYS;
    match algo {
        GpuSortAlgo::ThrustLike | GpuSortAlgo::CubLike => {
            if parallel {
                msort_cpu::parallel_onesweep_sort_with_aux(data, aux, threads);
            } else {
                msort_cpu::onesweep_sort_with_aux(data, &mut aux[..data.len()]);
            }
        }
        GpuSortAlgo::StehleLike => {
            if parallel {
                paradis::paradis_sort_with(
                    data,
                    paradis::ParadisConfig {
                        threads,
                        ..Default::default()
                    },
                );
            } else {
                msb_radix::msb_radix_sort(data);
            }
        }
        GpuSortAlgo::MgpuLike => {
            if parallel {
                mergesort::parallel_merge_path_sort(data, aux, threads);
            } else {
                mergesort::merge_path_sort(data);
            }
        }
    }
}

/// Merge the two sorted runs `src[..mid]` and `src[mid..]` into `dst`
/// (the `thrust::merge` pattern used by P2P sort's local merges).
pub fn device_merge_into<K: SortKey>(src: &[K], mid: usize, dst: &mut [K]) {
    device_merge_into_with(src, mid, dst, msort_cpu::pool::threads());
}

/// [`device_merge_into`] with an explicit worker budget: large merges split
/// along merge-path diagonals across the pool, exactly like the per-block
/// tiles of a real GPU merge kernel.
pub fn device_merge_into_with<K: SortKey>(src: &[K], mid: usize, dst: &mut [K], threads: usize) {
    if threads > 1 && dst.len() >= PARALLEL_MIN_KEYS {
        mergesort::parallel_merge_into(&src[..mid], &src[mid..], dst, threads);
    } else {
        mergesort::merge_into(&src[..mid], &src[mid..], dst);
    }
}

/// Stably partition `data` into `splitters.len() + 1` contiguous buckets
/// (sample sort's local scatter pass), using `aux` as the scatter target.
/// Returns the bucket boundaries (a `buckets + 1` prefix-sum vector).
pub fn device_partition<K: SortKey>(
    data: &mut [K],
    aux: &mut [K],
    splitters: &[(K, u64)],
) -> Vec<usize> {
    device_partition_with(data, aux, splitters, msort_cpu::pool::threads())
}

/// [`device_partition`] with an explicit worker budget. Above
/// [`PARALLEL_MIN_KEYS`] the histogram and scatter passes tile across the
/// pool (fixed 32 Ki-key tiles, so the output never depends on the
/// budget); below it the sequential path wins on dispatch overhead.
pub fn device_partition_with<K: SortKey>(
    data: &mut [K],
    aux: &mut [K],
    splitters: &[(K, u64)],
    threads: usize,
) -> Vec<usize> {
    let budget = if data.len() >= PARALLEL_MIN_KEYS {
        threads
    } else {
        1
    };
    msort_cpu::partition_by_splitters(data, &mut aux[..data.len()], splitters, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    #[test]
    fn all_primitives_sort() {
        for algo in GpuSortAlgo::all() {
            let input: Vec<u32> = generate(Distribution::Uniform, 10_000, 3);
            let mut data = input.clone();
            let mut aux = vec![0u32; data.len()];
            device_sort(algo, &mut data, &mut aux);
            assert!(is_sorted(&data), "{algo:?}");
            assert!(same_multiset(&input, &data), "{algo:?}");
        }
    }

    #[test]
    fn merge_into_merges_runs() {
        let mut src: Vec<u64> = generate(Distribution::Uniform, 1000, 4);
        src[..600].sort_unstable();
        src[600..].sort_unstable();
        let mut dst = vec![0u64; 1000];
        device_merge_into(&src, 600, &mut dst);
        assert!(is_sorted(&dst));
        assert!(same_multiset(&src, &dst));
    }

    #[test]
    fn aux_longer_than_data_is_fine() {
        let mut data: Vec<u32> = generate(Distribution::ReverseSorted, 100, 5);
        let mut aux = vec![0u32; 200];
        device_sort(GpuSortAlgo::ThrustLike, &mut data, &mut aux);
        assert!(is_sorted(&data));
    }
}
