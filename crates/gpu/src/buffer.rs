//! Buffers and the data world.
//!
//! Every buffer lives either in a NUMA node's host memory or in one GPU's
//! device memory. Device allocations are capacity-checked against the GPU
//! model's memory size — the same constraint that forces HET sort's
//! chunk-group design for large data in the paper.
//!
//! # Fidelity
//!
//! A [`World`] has a [`Fidelity`]: with `Full`, logical and physical sizes
//! are equal and every simulated sort is a real sort of every key. With
//! `Sampled(s)`, a buffer of logical length `N` stores `N / s` physical
//! keys: all *timing* uses logical byte counts while all *data-dependent
//! control flow* (pivot selection, merge ordering, validation) runs on the
//! physical sample. Lengths and offsets in the runtime API are always
//! logical and must be multiples of `s`, which keeps the logical↔physical
//! mapping exact.

use msort_data::SortKey;
use msort_topology::Topology;

/// Handle to a buffer in a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub(crate) usize);

/// Where a buffer's memory lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// Pinned host memory on NUMA socket `socket`.
    Host {
        /// NUMA socket index.
        socket: usize,
    },
    /// Device memory of GPU `index`.
    Gpu {
        /// System-wide GPU index.
        index: usize,
    },
}

impl Location {
    /// The transfer endpoint corresponding to this location.
    #[must_use]
    pub fn endpoint(self) -> msort_topology::Endpoint {
        match self {
            Location::Host { socket } => msort_topology::Endpoint::HostMem { socket },
            Location::Gpu { index } => msort_topology::Endpoint::GpuMem { index },
        }
    }
}

/// Simulation fidelity: the logical-to-physical sampling factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Physical data equals logical data (tests, examples).
    Full,
    /// One physical key represents `scale` logical keys (figure harness at
    /// paper scale). `Sampled(1)` behaves exactly like `Full`.
    Sampled {
        /// The sampling factor (`>= 1`).
        scale: u64,
    },
}

impl Fidelity {
    /// The sampling factor as a plain integer.
    #[must_use]
    pub fn scale(self) -> u64 {
        match self {
            Fidelity::Full => 1,
            Fidelity::Sampled { scale } => scale.max(1),
        }
    }
}

/// One buffer: location, logical length, physical payload.
#[derive(Debug)]
pub struct Buffer<K> {
    /// Where the buffer lives.
    pub location: Location,
    /// Logical length in keys.
    pub len: u64,
    /// Physical payload (`len / scale` keys).
    pub data: Vec<K>,
}

/// All buffers of one simulation run plus GPU memory accounting.
#[derive(Debug)]
pub struct World<K> {
    buffers: Vec<Buffer<K>>,
    fidelity: Fidelity,
    /// Remaining device memory per GPU (logical bytes).
    gpu_free: Vec<u64>,
}

impl<K: SortKey> World<K> {
    /// Create an empty world for the GPUs of `topo`.
    #[must_use]
    pub fn new(topo: &Topology, fidelity: Fidelity) -> Self {
        let gpu_free = (0..topo.gpu_count())
            .map(|g| topo.gpu_memory_bytes(g))
            .collect();
        Self {
            buffers: Vec::new(),
            fidelity,
            gpu_free,
        }
    }

    /// The world's fidelity.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Logical keys per physical key.
    #[must_use]
    pub fn scale(&self) -> u64 {
        self.fidelity.scale()
    }

    /// Convert a logical key count/offset to physical.
    ///
    /// # Panics
    /// Panics if `logical` is not a multiple of the sampling factor.
    #[must_use]
    pub fn physical(&self, logical: u64) -> usize {
        let s = self.scale();
        assert!(
            logical.is_multiple_of(s),
            "logical count {logical} is not a multiple of the sampling factor {s}"
        );
        usize::try_from(logical / s).expect("physical length fits usize")
    }

    /// Allocate a zero-initialized device buffer of `len` logical keys on
    /// GPU `gpu`.
    ///
    /// # Panics
    /// Panics if the GPU does not have `len × key_bytes` free.
    pub fn alloc_gpu(&mut self, gpu: usize, len: u64) -> BufId {
        let bytes = len * K::DATA_TYPE.key_bytes();
        let free = &mut self.gpu_free[gpu];
        assert!(
            *free >= bytes,
            "GPU {gpu} out of memory: need {bytes} B, {free} B free \
             (the paper's HET sort exists precisely because of this limit)"
        );
        *free -= bytes;
        self.push(Location::Gpu { index: gpu }, len)
    }

    /// Allocate a zero-initialized host buffer of `len` logical keys on
    /// NUMA socket `socket`.
    pub fn alloc_host(&mut self, socket: usize, len: u64) -> BufId {
        self.push(Location::Host { socket }, len)
    }

    /// Free a device buffer, returning its bytes to the GPU's pool. The
    /// handle becomes invalid (its slot is emptied, not reused).
    pub fn free(&mut self, id: BufId) {
        let buf = &mut self.buffers[id.0];
        if let Location::Gpu { index } = buf.location {
            self.gpu_free[index] += buf.len * K::DATA_TYPE.key_bytes();
        }
        buf.len = 0;
        buf.data = Vec::new();
    }

    /// Import host data as a buffer on `socket`. In sampled mode, `data`
    /// must already be the physical sample and `logical_len` the full size.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal `logical_len / scale`.
    pub fn import_host(&mut self, socket: usize, data: Vec<K>, logical_len: u64) -> BufId {
        assert_eq!(
            data.len(),
            self.physical(logical_len),
            "physical payload must be logical_len / scale"
        );
        let id = BufId(self.buffers.len());
        self.buffers.push(Buffer {
            location: Location::Host { socket },
            len: logical_len,
            data,
        });
        id
    }

    /// Remaining device memory on `gpu` in (logical) bytes.
    #[must_use]
    pub fn gpu_free_bytes(&self, gpu: usize) -> u64 {
        self.gpu_free[gpu]
    }

    /// The buffer behind a handle.
    #[must_use]
    pub fn buffer(&self, id: BufId) -> &Buffer<K> {
        &self.buffers[id.0]
    }

    /// Location of a buffer.
    #[must_use]
    pub fn location(&self, id: BufId) -> Location {
        self.buffers[id.0].location
    }

    /// Physical view of a logical key range of a buffer.
    #[must_use]
    pub fn slice(&self, id: BufId, offset: u64, len: u64) -> &[K] {
        let (o, l) = (self.physical(offset), self.physical(len));
        &self.buffers[id.0].data[o..o + l]
    }

    /// Copy a logical range between two buffers' physical payloads outside
    /// of simulated time (setup/teardown plumbing; simulated copies go
    /// through the executor's `memcpy`).
    pub fn copy_range(&mut self, src: BufId, src_off: u64, dst: BufId, dst_off: u64, len: u64) {
        let (so, do_, l) = (
            self.physical(src_off),
            self.physical(dst_off),
            self.physical(len),
        );
        if l == 0 {
            return;
        }
        if src == dst {
            self.buffers[src.0].data.copy_within(so..so + l, do_);
            return;
        }
        let (a, b) = split_two(&mut self.buffers, src.0, dst.0);
        par_copy(&mut b.data[do_..do_ + l], &a.data[so..so + l]);
    }

    /// Mutable physical view of a whole buffer.
    pub(crate) fn data_mut(&mut self, id: BufId) -> &mut [K] {
        &mut self.buffers[id.0].data
    }

    /// Mutable physical views of two distinct buffers.
    pub(crate) fn two_mut(&mut self, a: BufId, b: BufId) -> (&mut [K], &mut [K]) {
        let (ba, bb) = split_two(&mut self.buffers, a.0, b.0);
        (&mut ba.data, &mut bb.data)
    }

    fn push(&mut self, location: Location, len: u64) -> BufId {
        let physical = self.physical(len);
        let id = BufId(self.buffers.len());
        self.buffers.push(Buffer {
            location,
            len,
            data: vec![K::from_radix(<K as SortKey>::Radix::zero()); physical],
        });
        id
    }
}

use msort_data::keys::RadixImage;

/// Below this many bytes a plain `copy_from_slice` beats splitting the copy
/// across the pool. The old `std::thread::scope` version paid OS spawn+join
/// on every call and needed a 4 MiB floor to amortize it; dispatching on the
/// already-running shared pool costs under a handful of microseconds, so the
/// floor drops to 1 MiB. Re-measured alongside the OneSweep kernel work
/// (`cargo run -p msort-bench --release --example tune`, 1-core CI
/// container, release): at 256 KiB the split costs more than the whole
/// serial copy (serial 6.6 µs vs pooled 8.9 µs at pool width 2), at the
/// 1 MiB floor it is near break-even (47.9 µs vs 54.9 µs width-2
/// oversubscribed, 53.6 µs vs 55.8 µs width-1 fallback) and the gap keeps
/// narrowing at 4 MiB (369 µs vs 410 µs) — so 1 MiB remains the smallest
/// size where splitting can pay as soon as a second hardware thread
/// exists, without hurting the single-core worst case by more than ~15%.
const PAR_COPY_MIN_BYTES: usize = 1 << 20;

/// Copy `src` into `dst`, splitting large copies across the shared worker
/// pool. Full-fidelity runs at paper scale move gigabytes per staged host
/// copy; a single-threaded memcpy there is the dominant *wall-clock* cost
/// of the simulation (it never affects simulated time).
pub(crate) fn par_copy<K: Copy + Send + Sync>(dst: &mut [K], src: &[K]) {
    assert_eq!(dst.len(), src.len());
    let bytes = std::mem::size_of_val(src);
    // Memory-bandwidth bound: more than 8 workers stops helping.
    let threads = msort_cpu::pool::threads().min(8);
    if bytes < PAR_COPY_MIN_BYTES || threads < 2 {
        dst.copy_from_slice(src);
        return;
    }
    let chunk = dst.len().div_ceil(threads);
    msort_cpu::pool::scope(|s| {
        for (d, sr) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
            s.spawn(move || d.copy_from_slice(sr));
        }
    });
}

/// Disjoint mutable access to two slots of a vec.
fn split_two<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "need two distinct buffers");
    if i < j {
        let (lo, hi) = v.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_topology::Platform;

    fn world(fidelity: Fidelity) -> World<u32> {
        World::new(&Platform::test_pcie(2).topology, fidelity)
    }

    #[test]
    fn alloc_and_accounting() {
        let mut w = world(Fidelity::Full);
        let free0 = w.gpu_free_bytes(0);
        let b = w.alloc_gpu(0, 1024);
        assert_eq!(w.gpu_free_bytes(0), free0 - 4096);
        assert_eq!(w.buffer(b).len, 1024);
        assert_eq!(w.buffer(b).data.len(), 1024);
        w.free(b);
        assert_eq!(w.gpu_free_bytes(0), free0);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn over_allocation_panics() {
        let mut w = world(Fidelity::Full);
        let cap_keys = w.gpu_free_bytes(0) / 4;
        let _ = w.alloc_gpu(0, cap_keys + 1);
    }

    #[test]
    fn sampled_mode_scales_payload() {
        let mut w: World<u32> = world(Fidelity::Sampled { scale: 8 });
        let b = w.alloc_gpu(0, 800);
        assert_eq!(w.buffer(b).data.len(), 100);
        assert_eq!(w.physical(160), 20);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn unaligned_logical_panics() {
        let w: World<u32> = world(Fidelity::Sampled { scale: 8 });
        let _ = w.physical(100);
    }

    #[test]
    fn import_and_slice() {
        let mut w = world(Fidelity::Full);
        let b = w.import_host(0, vec![5u32, 6, 7, 8], 4);
        assert_eq!(w.slice(b, 1, 2), &[6, 7]);
        assert_eq!(w.location(b), Location::Host { socket: 0 });
    }

    #[test]
    fn copy_between_buffers() {
        let mut w = world(Fidelity::Full);
        let src = w.import_host(0, vec![1u32, 2, 3, 4], 4);
        let dst = w.alloc_gpu(0, 4);
        w.copy_range(src, 1, dst, 0, 3);
        assert_eq!(w.slice(dst, 0, 3), &[2, 3, 4]);
    }

    #[test]
    fn copy_within_buffer() {
        let mut w = world(Fidelity::Full);
        let b = w.import_host(0, vec![1u32, 2, 3, 4], 4);
        w.copy_range(b, 0, b, 2, 2);
        assert_eq!(w.slice(b, 0, 4), &[1, 2, 1, 2]);
    }

    #[test]
    fn par_copy_large_matches_serial() {
        // 8 MiB: exercises the threaded path, not the small-copy fallback.
        let src: Vec<u32> = (0..2u32 << 20)
            .map(|i| i.wrapping_mul(0x9e37_79b9))
            .collect();
        let mut dst = vec![0u32; src.len()];
        par_copy(&mut dst, &src);
        assert_eq!(dst, src);
    }

    #[test]
    fn fidelity_scale() {
        assert_eq!(Fidelity::Full.scale(), 1);
        assert_eq!(Fidelity::Sampled { scale: 0 }.scale(), 1);
        assert_eq!(Fidelity::Sampled { scale: 1000 }.scale(), 1000);
    }
}
