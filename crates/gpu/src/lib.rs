//! Virtual GPU runtime.
//!
//! This crate gives the sorting algorithms the same programming model they
//! would have on CUDA — devices, device buffers, streams, events,
//! `memcpy` in all four directions (HtoD, DtoH, DtoD, P2P), and device
//! sort/merge primitives — while executing *real data movement* on host
//! memory and advancing the simulated clock of `msort-sim`:
//!
//! * [`buffer`] — the world of buffers: host (NUMA-socket-local) and device
//!   (capacity-checked against the GPU's memory size), with an optional
//!   *sampled* fidelity mode where a buffer of logical length `N` carries a
//!   physical payload of `N / scale` keys so paper-scale workloads (up to
//!   60 B keys) fit in a small container while control flow (pivots, merge
//!   cascades) still runs on real data;
//! * [`system`] — the executor: operations are enqueued on streams (FIFO,
//!   like CUDA streams), may wait on other operations (events), and run
//!   when ready; transfers become fluid flows contending for interconnect
//!   bandwidth, kernels get durations from the calibrated cost models, and
//!   each operation's *data effect* (the actual copy/sort/merge) applies at
//!   its completion time;
//! * [`primitives`] — the functional implementations behind the four
//!   modeled device sort algorithms of the paper's Table 2 (LSB radix for
//!   Thrust/CUB, MSB radix for Stehle, merge-path merge sort for MGPU).
//!
//! The runtime intentionally mirrors the paper's implementation choices:
//! memory is pre-allocated outside the timed region, every copy uses
//! pinned-host semantics (the calibrated link rates *are* pinned-copy
//! rates), and bidirectional overlap comes from putting the two directions
//! on different streams, exactly like using both copy engines.
//!
//! ```
//! use msort_gpu::{Fidelity, GpuSystem, Phase};
//! use msort_sim::GpuSortAlgo;
//! use msort_topology::Platform;
//!
//! let dgx = Platform::dgx_a100();
//! let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&dgx, Fidelity::Full);
//! let host = sys.world_mut().import_host(0, vec![3, 1, 2, 0], 4);
//! let dev = sys.world_mut().alloc_gpu(0, 4);
//! let aux = sys.world_mut().alloc_gpu(0, 4);
//! let s = sys.stream();
//! let up = sys.memcpy(s, host, 0, dev, 0, 4, &[], Phase::HtoD);
//! let so = sys.gpu_sort(s, GpuSortAlgo::ThrustLike, dev, (0, 4), aux, &[up]);
//! sys.memcpy(s, dev, 0, host, 0, 4, &[so], Phase::DtoH);
//! sys.synchronize();
//! assert_eq!(sys.world().slice(host, 0, 4), &[0, 1, 2, 3]);
//! ```

pub mod buffer;
mod exec;
pub mod primitives;
pub mod system;
pub mod trace;

pub use buffer::{BufId, Fidelity, Location, World};
pub use system::{GpuSystem, OpId, Phase, StreamId};
pub use trace::TimelineEntry;
