//! Execution timeline export.
//!
//! Every simulated run leaves a complete record of which operation ran
//! when, on which stream. [`GpuSystem::timeline`] exposes it as data and
//! [`chrome_trace`] renders it in the Chrome trace-event format, so a run
//! can be inspected interactively in `chrome://tracing` / Perfetto — the
//! closest thing the simulator has to `nsys` profiles of the real system.

use crate::system::{GpuSystem, Phase};
use msort_data::SortKey;
use msort_sim::SimTime;
use std::fmt::Write as _;

/// One completed operation in the timeline.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Display name ("HtoD copy", "gpu sort", ...).
    pub name: &'static str,
    /// The phase the operation was tagged with.
    pub phase: Phase,
    /// Stream index the operation ran on.
    pub stream: usize,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl Phase {
    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::HtoD => "HtoD",
            Phase::DtoH => "DtoH",
            Phase::Sort => "sort",
            Phase::Merge => "merge",
            Phase::Other => "other",
        }
    }

    /// Inverse of [`Phase::label`] (tooling that filters traces by the
    /// `cat` field parses labels back).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "HtoD" => Some(Phase::HtoD),
            "DtoH" => Some(Phase::DtoH),
            "sort" => Some(Phase::Sort),
            "merge" => Some(Phase::Merge),
            "other" => Some(Phase::Other),
            _ => None,
        }
    }
}

/// Render a timeline in the Chrome trace-event JSON format
/// (`chrome://tracing`, Perfetto). One "thread" per stream; durations in
/// microseconds of simulated time.
#[must_use]
pub fn chrome_trace(entries: &[TimelineEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let ts = e.start.0 as f64 / 1e3; // ns -> us
        let dur = (e.end.0 - e.start.0) as f64 / 1e3;
        let _ = write!(
            out,
            "  {{\"name\": \"{} ({})\", \"cat\": \"{}\", \"ph\": \"X\", \
             \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": 0, \"tid\": {}}}",
            e.name,
            e.phase.label(),
            e.phase.label(),
            e.stream,
        );
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

impl<K: SortKey> GpuSystem<'_, K> {
    /// The completed-operation timeline, ordered by start time.
    #[must_use]
    pub fn timeline(&self) -> Vec<TimelineEntry> {
        let mut entries = self.timeline_entries();
        entries.sort_by_key(|e| (e.start, e.stream));
        entries
    }

    /// Convenience: the full run as a Chrome trace JSON string.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.timeline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Fidelity;
    use msort_sim::GpuSortAlgo;
    use msort_topology::Platform;

    #[test]
    fn timeline_records_all_ops() {
        let p = Platform::test_pcie(1);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let h = sys.world_mut().import_host(0, vec![3u32, 1, 2, 0], 4);
        let d = sys.world_mut().alloc_gpu(0, 4);
        let aux = sys.world_mut().alloc_gpu(0, 4);
        let s = sys.stream();
        let up = sys.memcpy(s, h, 0, d, 0, 4, &[], Phase::HtoD);
        let so = sys.gpu_sort(s, GpuSortAlgo::ThrustLike, d, (0, 4), aux, &[up]);
        sys.memcpy(s, d, 0, h, 0, 4, &[so], Phase::DtoH);
        sys.synchronize();

        let timeline = sys.timeline();
        assert_eq!(timeline.len(), 3);
        assert!(timeline.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(timeline[0].phase, Phase::HtoD);
        assert_eq!(timeline[1].phase, Phase::Sort);
        assert_eq!(timeline[2].phase, Phase::DtoH);
        for e in &timeline {
            assert!(e.end >= e.start);
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let p = Platform::test_pcie(1);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let h = sys.world_mut().import_host(0, vec![1u32; 16], 16);
        let d = sys.world_mut().alloc_gpu(0, 16);
        let s = sys.stream();
        sys.memcpy(s, h, 0, d, 0, 16, &[], Phase::HtoD);
        sys.synchronize();
        let json = sys.chrome_trace();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("HtoD"));
        // Exactly one event, so no trailing comma.
        assert_eq!(json.matches("{\"name\"").count(), 1);
        assert!(!json.contains("},\n]"));
    }

    #[test]
    fn empty_timeline_renders() {
        assert_eq!(chrome_trace(&[]), "[\n]\n");
    }

    // ---- minimal JSON validity checker ------------------------------
    //
    // The build is offline (no serde_json), so trace output is certified
    // by a small recursive-descent recognizer of RFC 8259 JSON. It
    // accepts exactly one top-level value surrounded by whitespace.

    fn json_valid(s: &str) -> bool {
        let b = s.as_bytes();
        match json_value(b, 0) {
            Some(i) => b[i..].iter().all(u8::is_ascii_whitespace),
            None => false,
        }
    }

    fn json_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    fn json_value(b: &[u8], i: usize) -> Option<usize> {
        let i = json_ws(b, i);
        match b.get(i)? {
            b'{' => json_seq(b, i, b'}', true),
            b'[' => json_seq(b, i, b']', false),
            b'"' => json_string(b, i),
            b't' => b[i..].starts_with(b"true").then_some(i + 4),
            b'f' => b[i..].starts_with(b"false").then_some(i + 5),
            b'n' => b[i..].starts_with(b"null").then_some(i + 4),
            _ => json_number(b, i),
        }
    }

    /// Object (`want_keys`) or array body after the opening bracket.
    fn json_seq(b: &[u8], i: usize, close: u8, want_keys: bool) -> Option<usize> {
        let mut i = json_ws(b, i + 1);
        if b.get(i) == Some(&close) {
            return Some(i + 1);
        }
        loop {
            if want_keys {
                i = json_string(b, json_ws(b, i))?;
                i = json_ws(b, i);
                if b.get(i) != Some(&b':') {
                    return None;
                }
                i += 1;
            }
            i = json_value(b, i)?;
            i = json_ws(b, i);
            match b.get(i)? {
                b',' => i += 1,
                c if *c == close => return Some(i + 1),
                _ => return None,
            }
        }
    }

    fn json_string(b: &[u8], i: usize) -> Option<usize> {
        if b.get(i) != Some(&b'"') {
            return None;
        }
        let mut i = i + 1;
        loop {
            match b.get(i)? {
                b'"' => return Some(i + 1),
                b'\\' => i += 2,
                c if *c < 0x20 => return None,
                _ => i += 1,
            }
        }
    }

    fn json_number(b: &[u8], mut i: usize) -> Option<usize> {
        let start = i;
        if b.get(i) == Some(&b'-') {
            i += 1;
        }
        let digits = |b: &[u8], mut i: usize| {
            let s = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            (i > s).then_some(i)
        };
        i = digits(b, i)?;
        if b.get(i) == Some(&b'.') {
            i = digits(b, i + 1)?;
        }
        if matches!(b.get(i), Some(b'e' | b'E')) {
            i += 1;
            if matches!(b.get(i), Some(b'+' | b'-')) {
                i += 1;
            }
            i = digits(b, i)?;
        }
        (i > start).then_some(i)
    }

    #[test]
    fn json_checker_sanity() {
        assert!(json_valid("[]"));
        assert!(json_valid(r#"{"a": [1, -2.5e3, "x\"y", true, null]}"#));
        assert!(!json_valid("[1,]"));
        assert!(!json_valid("{\"a\" 1}"));
        assert!(!json_valid("[1] trailing"));
        assert!(!json_valid("{'a': 1}"));
    }

    /// A multi-stream workload whose timeline the remaining tests verify.
    fn traced_system(p: &Platform) -> GpuSystem<'_, u32> {
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(p, Fidelity::Full);
        let n: u64 = 1 << 12;
        let h = sys
            .world_mut()
            .import_host(0, (0..n as u32).rev().collect(), n);
        let d0 = sys.world_mut().alloc_gpu(0, n);
        let a0 = sys.world_mut().alloc_gpu(0, n);
        let d1 = sys.world_mut().alloc_gpu(1, n);
        let s0 = sys.stream();
        let s1 = sys.stream();
        let up0 = sys.memcpy(s0, h, 0, d0, 0, n, &[], Phase::HtoD);
        let so = sys.gpu_sort(s0, GpuSortAlgo::ThrustLike, d0, (0, n), a0, &[up0]);
        sys.memcpy(s1, h, 0, d1, 0, n, &[], Phase::HtoD);
        sys.memcpy(s1, d0, 0, d1, 0, n, &[so], Phase::Merge);
        sys.memcpy(s0, d0, 0, h, 0, n, &[so], Phase::DtoH);
        sys.synchronize();
        sys
    }

    #[test]
    fn chrome_trace_parses_as_json() {
        let p = Platform::test_pcie(2);
        let sys = traced_system(&p);
        let json = sys.chrome_trace();
        assert!(
            json_valid(&json),
            "chrome_trace emitted invalid JSON:\n{json}"
        );
        assert!(json_valid(&chrome_trace(&[])));
    }

    #[test]
    fn per_stream_entries_monotonic_and_non_overlapping() {
        let p = Platform::test_pcie(2);
        let sys = traced_system(&p);
        let timeline = sys.timeline();
        assert!(timeline.len() >= 5);
        // Globally ordered by start time.
        assert!(timeline.windows(2).all(|w| w[0].start <= w[1].start));
        // Within one stream ops are serial: ordered and non-overlapping.
        let streams: std::collections::BTreeSet<usize> =
            timeline.iter().map(|e| e.stream).collect();
        for s in streams {
            let ops: Vec<&TimelineEntry> = timeline.iter().filter(|e| e.stream == s).collect();
            for w in ops.windows(2) {
                assert!(
                    w[0].end <= w[1].start,
                    "stream {s}: '{}' [{}, {}] overlaps '{}' [{}, {}]",
                    w[0].name,
                    w[0].start,
                    w[0].end,
                    w[1].name,
                    w[1].start,
                    w[1].end,
                );
            }
        }
    }

    #[test]
    fn phase_labels_round_trip() {
        for phase in [
            Phase::HtoD,
            Phase::DtoH,
            Phase::Sort,
            Phase::Merge,
            Phase::Other,
        ] {
            assert_eq!(Phase::from_label(phase.label()), Some(phase));
        }
        assert_eq!(Phase::from_label("bogus"), None);
    }
}
