//! Execution timeline export.
//!
//! Every simulated run leaves a complete record of which operation ran
//! when, on which stream. [`GpuSystem::timeline`] exposes it as data and
//! [`chrome_trace`] renders it in the Chrome trace-event format, so a run
//! can be inspected interactively in `chrome://tracing` / Perfetto — the
//! closest thing the simulator has to `nsys` profiles of the real system.

use crate::system::{GpuSystem, Phase};
use msort_data::SortKey;
use msort_sim::SimTime;
use std::fmt::Write as _;

/// One completed operation in the timeline.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Display name ("HtoD copy", "gpu sort", ...).
    pub name: &'static str,
    /// The phase the operation was tagged with.
    pub phase: Phase,
    /// Stream index the operation ran on.
    pub stream: usize,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl Phase {
    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::HtoD => "HtoD",
            Phase::DtoH => "DtoH",
            Phase::Sort => "sort",
            Phase::Merge => "merge",
            Phase::Partition => "partition",
            Phase::Other => "other",
        }
    }

    /// Inverse of [`Phase::label`] (tooling that filters traces by the
    /// `cat` field parses labels back).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "HtoD" => Some(Phase::HtoD),
            "DtoH" => Some(Phase::DtoH),
            "sort" => Some(Phase::Sort),
            "merge" => Some(Phase::Merge),
            "partition" => Some(Phase::Partition),
            "other" => Some(Phase::Other),
            _ => None,
        }
    }
}

/// Render a timeline in the Chrome trace-event JSON format
/// (`chrome://tracing`, Perfetto). One "thread" per stream; durations in
/// microseconds of simulated time.
///
/// All strings pass through [`msort_trace::json_escape`], so the output
/// is valid JSON for any name (the original writer interpolated names
/// verbatim and leaned on them being well-behaved `&'static str`s).
#[deprecated(
    note = "attach a msort_trace::Recorder (RunConfig::with_recorder) and export \
            the unified trace with msort_trace::chrome_trace instead"
)]
#[must_use]
pub fn chrome_trace(entries: &[TimelineEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let ts = e.start.0 as f64 / 1e3; // ns -> us
        let dur = (e.end.0 - e.start.0) as f64 / 1e3;
        let label = msort_trace::json_escape(e.phase.label());
        let _ = write!(
            out,
            "  {{\"name\": \"{} ({label})\", \"cat\": \"{label}\", \"ph\": \"X\", \
             \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": 0, \"tid\": {}}}",
            msort_trace::json_escape(e.name),
            e.stream,
        );
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

impl<K: SortKey> GpuSystem<'_, K> {
    /// The completed-operation timeline, ordered by start time.
    #[must_use]
    pub fn timeline(&self) -> Vec<TimelineEntry> {
        let mut entries = self.timeline_entries();
        entries.sort_by_key(|e| (e.start, e.stream));
        entries
    }

    /// Convenience: the full run as a Chrome trace JSON string.
    ///
    /// Covers this system's op timeline only. The unified exporter
    /// ([`msort_trace::chrome_trace`] over a [`msort_trace::Recorder`]
    /// snapshot) additionally shows links, flows, faults, and serve-layer
    /// jobs in the same file.
    #[deprecated(note = "attach a msort_trace::Recorder (GpuSystem::set_recorder or \
                RunConfig::with_recorder) and export with msort_trace::chrome_trace instead")]
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        #[allow(deprecated)]
        chrome_trace(&self.timeline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Fidelity;
    use msort_sim::GpuSortAlgo;
    use msort_topology::Platform;

    #[test]
    fn timeline_records_all_ops() {
        let p = Platform::test_pcie(1);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let h = sys.world_mut().import_host(0, vec![3u32, 1, 2, 0], 4);
        let d = sys.world_mut().alloc_gpu(0, 4);
        let aux = sys.world_mut().alloc_gpu(0, 4);
        let s = sys.stream();
        let up = sys.memcpy(s, h, 0, d, 0, 4, &[], Phase::HtoD);
        let so = sys.gpu_sort(s, GpuSortAlgo::ThrustLike, d, (0, 4), aux, &[up]);
        sys.memcpy(s, d, 0, h, 0, 4, &[so], Phase::DtoH);
        sys.synchronize();

        let timeline = sys.timeline();
        assert_eq!(timeline.len(), 3);
        assert!(timeline.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(timeline[0].phase, Phase::HtoD);
        assert_eq!(timeline[1].phase, Phase::Sort);
        assert_eq!(timeline[2].phase, Phase::DtoH);
        for e in &timeline {
            assert!(e.end >= e.start);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn chrome_trace_is_valid_json_shape() {
        let p = Platform::test_pcie(1);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let h = sys.world_mut().import_host(0, vec![1u32; 16], 16);
        let d = sys.world_mut().alloc_gpu(0, 16);
        let s = sys.stream();
        sys.memcpy(s, h, 0, d, 0, 16, &[], Phase::HtoD);
        sys.synchronize();
        let json = sys.chrome_trace();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("HtoD"));
        // Exactly one event, so no trailing comma.
        assert_eq!(json.matches("{\"name\"").count(), 1);
        assert!(!json.contains("},\n]"));
    }

    #[test]
    #[allow(deprecated)]
    fn empty_timeline_renders() {
        assert_eq!(chrome_trace(&[]), "[\n]\n");
    }

    // The build is offline (no serde_json), so trace output is certified
    // by the in-tree RFC 8259 recognizer, shared from `msort-trace` since
    // the unified exporter's tests need it too.
    use msort_trace::json_valid;

    /// A multi-stream workload whose timeline the remaining tests verify.
    fn traced_system(p: &Platform) -> GpuSystem<'_, u32> {
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(p, Fidelity::Full);
        let n: u64 = 1 << 12;
        let h = sys
            .world_mut()
            .import_host(0, (0..n as u32).rev().collect(), n);
        let d0 = sys.world_mut().alloc_gpu(0, n);
        let a0 = sys.world_mut().alloc_gpu(0, n);
        let d1 = sys.world_mut().alloc_gpu(1, n);
        let s0 = sys.stream();
        let s1 = sys.stream();
        let up0 = sys.memcpy(s0, h, 0, d0, 0, n, &[], Phase::HtoD);
        let so = sys.gpu_sort(s0, GpuSortAlgo::ThrustLike, d0, (0, n), a0, &[up0]);
        sys.memcpy(s1, h, 0, d1, 0, n, &[], Phase::HtoD);
        sys.memcpy(s1, d0, 0, d1, 0, n, &[so], Phase::Merge);
        sys.memcpy(s0, d0, 0, h, 0, n, &[so], Phase::DtoH);
        sys.synchronize();
        sys
    }

    #[test]
    #[allow(deprecated)]
    fn chrome_trace_parses_as_json() {
        let p = Platform::test_pcie(2);
        let sys = traced_system(&p);
        let json = sys.chrome_trace();
        assert!(
            json_valid(&json),
            "chrome_trace emitted invalid JSON:\n{json}"
        );
        assert!(json_valid(&chrome_trace(&[])));
    }

    #[test]
    fn recorder_mirrors_the_op_timeline() {
        use msort_trace::{groups, EventKind, Recorder};
        let p = Platform::test_pcie(2);
        let rec = Recorder::new();
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        sys.set_recorder(rec.clone());
        assert!(sys.recorder().is_enabled());
        let sys = {
            // Same workload as `traced_system`, on the recorder-attached
            // system.
            let n: u64 = 1 << 12;
            let h = sys
                .world_mut()
                .import_host(0, (0..n as u32).rev().collect(), n);
            let d0 = sys.world_mut().alloc_gpu(0, n);
            let a0 = sys.world_mut().alloc_gpu(0, n);
            let d1 = sys.world_mut().alloc_gpu(1, n);
            let s0 = sys.stream();
            let s1 = sys.stream();
            let up0 = sys.memcpy(s0, h, 0, d0, 0, n, &[], Phase::HtoD);
            let so = sys.gpu_sort(s0, GpuSortAlgo::ThrustLike, d0, (0, n), a0, &[up0]);
            sys.memcpy(s1, h, 0, d1, 0, n, &[], Phase::HtoD);
            sys.memcpy(s1, d0, 0, d1, 0, n, &[so], Phase::Merge);
            sys.memcpy(s0, d0, 0, h, 0, n, &[so], Phase::DtoH);
            sys.synchronize();
            sys
        };
        let data = rec.snapshot().unwrap();
        // Every timeline entry has a matching span on its stream's track.
        let timeline = sys.timeline();
        let spans: Vec<_> = data
            .events_in_group(groups::GPU)
            .filter(|e| matches!(e.kind, EventKind::Span { .. }))
            .collect();
        assert_eq!(spans.len(), timeline.len());
        for e in &timeline {
            assert!(
                spans.iter().any(|s| {
                    s.name == e.name
                        && s.cat == e.phase.label()
                        && s.kind
                            == EventKind::Span {
                                start_ns: e.start.0,
                                end_ns: e.end.0,
                            }
                        && data.track(s.track).name == format!("stream {}", e.stream)
                }),
                "timeline entry {e:?} missing from the recording"
            );
        }
        // The unified exporter renders it as valid JSON.
        assert!(json_valid(&msort_trace::chrome_trace(&data)));
    }

    #[test]
    fn per_stream_entries_monotonic_and_non_overlapping() {
        let p = Platform::test_pcie(2);
        let sys = traced_system(&p);
        let timeline = sys.timeline();
        assert!(timeline.len() >= 5);
        // Globally ordered by start time.
        assert!(timeline.windows(2).all(|w| w[0].start <= w[1].start));
        // Within one stream ops are serial: ordered and non-overlapping.
        let streams: std::collections::BTreeSet<usize> =
            timeline.iter().map(|e| e.stream).collect();
        for s in streams {
            let ops: Vec<&TimelineEntry> = timeline.iter().filter(|e| e.stream == s).collect();
            for w in ops.windows(2) {
                assert!(
                    w[0].end <= w[1].start,
                    "stream {s}: '{}' [{}, {}] overlaps '{}' [{}, {}]",
                    w[0].name,
                    w[0].start,
                    w[0].end,
                    w[1].name,
                    w[1].start,
                    w[1].end,
                );
            }
        }
    }

    #[test]
    fn phase_labels_round_trip() {
        for phase in [
            Phase::HtoD,
            Phase::DtoH,
            Phase::Sort,
            Phase::Merge,
            Phase::Partition,
            Phase::Other,
        ] {
            assert_eq!(Phase::from_label(phase.label()), Some(phase));
        }
        assert_eq!(Phase::from_label("bogus"), None);
    }
}
