//! Execution timeline export.
//!
//! Every simulated run leaves a complete record of which operation ran
//! when, on which stream. [`GpuSystem::timeline`] exposes it as data and
//! [`chrome_trace`] renders it in the Chrome trace-event format, so a run
//! can be inspected interactively in `chrome://tracing` / Perfetto — the
//! closest thing the simulator has to `nsys` profiles of the real system.

use crate::system::{GpuSystem, Phase};
use msort_data::SortKey;
use msort_sim::SimTime;
use std::fmt::Write as _;

/// One completed operation in the timeline.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Display name ("HtoD copy", "gpu sort", ...).
    pub name: &'static str,
    /// The phase the operation was tagged with.
    pub phase: Phase,
    /// Stream index the operation ran on.
    pub stream: usize,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl Phase {
    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::HtoD => "HtoD",
            Phase::DtoH => "DtoH",
            Phase::Sort => "sort",
            Phase::Merge => "merge",
            Phase::Other => "other",
        }
    }
}

/// Render a timeline in the Chrome trace-event JSON format
/// (`chrome://tracing`, Perfetto). One "thread" per stream; durations in
/// microseconds of simulated time.
#[must_use]
pub fn chrome_trace(entries: &[TimelineEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let ts = e.start.0 as f64 / 1e3; // ns -> us
        let dur = (e.end.0 - e.start.0) as f64 / 1e3;
        let _ = write!(
            out,
            "  {{\"name\": \"{} ({})\", \"cat\": \"{}\", \"ph\": \"X\", \
             \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": 0, \"tid\": {}}}",
            e.name,
            e.phase.label(),
            e.phase.label(),
            e.stream,
        );
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

impl<K: SortKey> GpuSystem<'_, K> {
    /// The completed-operation timeline, ordered by start time.
    #[must_use]
    pub fn timeline(&self) -> Vec<TimelineEntry> {
        let mut entries = self.timeline_entries();
        entries.sort_by_key(|e| (e.start, e.stream));
        entries
    }

    /// Convenience: the full run as a Chrome trace JSON string.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.timeline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Fidelity;
    use msort_sim::GpuSortAlgo;
    use msort_topology::Platform;

    #[test]
    fn timeline_records_all_ops() {
        let p = Platform::test_pcie(1);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let h = sys.world_mut().import_host(0, vec![3u32, 1, 2, 0], 4);
        let d = sys.world_mut().alloc_gpu(0, 4);
        let aux = sys.world_mut().alloc_gpu(0, 4);
        let s = sys.stream();
        let up = sys.memcpy(s, h, 0, d, 0, 4, &[], Phase::HtoD);
        let so = sys.gpu_sort(s, GpuSortAlgo::ThrustLike, d, (0, 4), aux, &[up]);
        sys.memcpy(s, d, 0, h, 0, 4, &[so], Phase::DtoH);
        sys.synchronize();

        let timeline = sys.timeline();
        assert_eq!(timeline.len(), 3);
        assert!(timeline.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(timeline[0].phase, Phase::HtoD);
        assert_eq!(timeline[1].phase, Phase::Sort);
        assert_eq!(timeline[2].phase, Phase::DtoH);
        for e in &timeline {
            assert!(e.end >= e.start);
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let p = Platform::test_pcie(1);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let h = sys.world_mut().import_host(0, vec![1u32; 16], 16);
        let d = sys.world_mut().alloc_gpu(0, 16);
        let s = sys.stream();
        sys.memcpy(s, h, 0, d, 0, 16, &[], Phase::HtoD);
        sys.synchronize();
        let json = sys.chrome_trace();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("HtoD"));
        // Exactly one event, so no trailing comma.
        assert_eq!(json.matches("{\"name\"").count(), 1);
        assert!(!json.contains("},\n]"));
    }

    #[test]
    fn empty_timeline_renders() {
        assert_eq!(chrome_trace(&[]), "[\n]\n");
    }
}
