//! Conflict-aware wall-clock executor for data effects.
//!
//! Since PR 1 the simulated *clocks* are fast, but every data effect — the
//! real host-memory copy/sort/merge behind each completed op — used to run
//! serially on the driver thread inside `complete_op`. This module makes
//! those effects concurrent in *wall-clock* time without perturbing
//! anything observable:
//!
//! * Each effect is submitted as a job tagged with its buffer read/write
//!   set ([`Access`] ranges over `World` buffer indices).
//! * Two jobs **conflict** when they touch overlapping ranges of the same
//!   buffer and at least one writes. A new job waits for every live
//!   conflicting job submitted before it; non-conflicting jobs (ops on
//!   different GPUs, disjoint ranges) run concurrently on the shared
//!   worker pool.
//! * Jobs are submitted in simulated completion order, which is itself
//!   deterministic, so conflicting jobs always run in the order the serial
//!   executor ran them and the final buffer state is bit-identical. (The
//!   kernels additionally chunk by the process-wide
//!   [`msort_cpu::pool::threads`] budget, never by this executor's thread
//!   count, so even *within* one effect the output never depends on how
//!   effects were scheduled.)
//! * The driver joins via [`EffectExecutor::flush`] before any return to
//!   host code and via [`EffectExecutor::wait_writes`] before snapshotting
//!   a copy source, so no read ever observes a half-applied effect.
//!
//! With `threads <= 1` the executor degenerates to the serial seed
//! behavior: submit runs the job inline and the joins are no-ops.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// One contiguous physical-index range of one buffer, read or written.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    /// `World` buffer index (`BufId.0`).
    pub buf: usize,
    /// First physical element index touched.
    pub lo: usize,
    /// One past the last physical element index touched.
    pub hi: usize,
    /// `true` for writes, `false` for reads.
    pub write: bool,
}

impl Access {
    fn conflicts(&self, other: &Access) -> bool {
        (self.write || other.write)
            && self.buf == other.buf
            && self.lo < other.hi
            && other.lo < self.hi
    }
}

fn sets_conflict(a: &[Access], b: &[Access]) -> bool {
    a.iter().any(|x| b.iter().any(|y| x.conflicts(y)))
}

/// A submitted effect. `run` is `Some` while the job waits for conflicting
/// predecessors; once dispatched it stays in the map as a placeholder (so
/// later jobs still order against it) until its closure finishes.
struct Job {
    accesses: Vec<Access>,
    run: Option<Box<dyn FnOnce() + Send + 'static>>,
    /// Unfinished earlier jobs this one conflicts with.
    deps: usize,
    /// Later jobs waiting on this one.
    dependents: Vec<u64>,
}

#[derive(Default)]
struct Inner {
    /// Live jobs (waiting, ready, or running) by id.
    jobs: HashMap<u64, Job>,
    next_id: u64,
    /// First panic payload from any job.
    panic: Option<Box<dyn Any + Send + 'static>>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Notified after every job completion (the driver's join predicates
    /// live on `inner`).
    cv: Condvar,
}

impl Shared {
    /// Dispatch a ready job's closure onto the pool.
    fn dispatch(self: &Arc<Self>, id: u64, run: Box<dyn FnOnce() + Send + 'static>) {
        let shared = Arc::clone(self);
        msort_cpu::pool::spawn(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
                let mut inner = shared.inner.lock().expect("exec mutex");
                inner.panic.get_or_insert(payload);
            }
            shared.complete(id);
        });
    }

    /// Remove a finished job, release its dependents, dispatch the newly
    /// ready ones, and wake the driver.
    fn complete(self: &Arc<Self>, id: u64) {
        let mut ready: Vec<(u64, Box<dyn FnOnce() + Send + 'static>)> = Vec::new();
        {
            let mut inner = self.inner.lock().expect("exec mutex");
            let job = inner.jobs.remove(&id).expect("completed job is live");
            debug_assert!(job.run.is_none(), "completed job was dispatched");
            for dep in job.dependents {
                let d = inner.jobs.get_mut(&dep).expect("dependent is live");
                d.deps -= 1;
                if d.deps == 0 {
                    if let Some(run) = d.run.take() {
                        ready.push((dep, run));
                    }
                }
            }
        }
        // Enqueue ready dependents before notifying: a helping waiter woken
        // by the notify must be able to find the work.
        for (dep, run) in ready {
            self.dispatch(dep, run);
        }
        self.cv.notify_all();
    }
}

/// The wall-clock effect executor owned by a `GpuSystem`.
pub(crate) struct EffectExecutor {
    shared: Arc<Shared>,
    threads: usize,
}

impl EffectExecutor {
    pub(crate) fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner::default()),
                cv: Condvar::new(),
            }),
            threads: msort_cpu::pool::threads(),
        }
    }

    /// Effect-level concurrency budget. `1` forces the serial baseline
    /// (submit applies inline). Callers must be flushed when changing it.
    pub(crate) fn set_threads(&mut self, threads: usize) {
        debug_assert!(
            self.shared
                .inner
                .lock()
                .expect("exec mutex")
                .jobs
                .is_empty(),
            "set_threads requires a flushed executor"
        );
        self.threads = threads.max(1);
    }

    fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Submit an effect job. Serial mode runs it inline; otherwise it runs
    /// on the pool once every earlier live job it conflicts with finished.
    ///
    /// # Safety contract (not enforced by types)
    /// `run` may capture raw views of `World` buffer memory; the caller
    /// guarantees those stay valid until the job completes (the system
    /// flushes before any world access or drop) and that `accesses` covers
    /// every byte the closure touches.
    pub(crate) fn submit(&self, accesses: Vec<Access>, run: impl FnOnce() + Send + 'static) {
        if self.is_serial() {
            run();
            return;
        }
        let (id, runnable) = {
            let mut inner = self.shared.inner.lock().expect("exec mutex");
            let id = inner.next_id;
            inner.next_id += 1;
            let mut deps = 0usize;
            let mut blockers: Vec<u64> = Vec::new();
            for (&jid, job) in &inner.jobs {
                if sets_conflict(&job.accesses, &accesses) {
                    deps += 1;
                    blockers.push(jid);
                }
            }
            for jid in blockers {
                inner
                    .jobs
                    .get_mut(&jid)
                    .expect("blocker is live")
                    .dependents
                    .push(id);
            }
            let run: Box<dyn FnOnce() + Send + 'static> = Box::new(run);
            let (stored, runnable) = if deps == 0 {
                (None, Some(run))
            } else {
                (Some(run), None)
            };
            inner.jobs.insert(
                id,
                Job {
                    accesses,
                    run: stored,
                    deps,
                    dependents: Vec::new(),
                },
            );
            (id, runnable)
        };
        if let Some(run) = runnable {
            self.shared.dispatch(id, run);
        }
    }

    /// Block until no live job *writes* into `[lo, hi)` of buffer `buf`
    /// (used before a copy snapshots its source — concurrent readers are
    /// fine, a half-applied writer is not). Helps the pool while waiting.
    pub(crate) fn wait_writes(&self, buf: usize, lo: usize, hi: usize) {
        if self.is_serial() || lo >= hi {
            return;
        }
        let probe = [Access {
            buf,
            lo,
            hi,
            write: false,
        }];
        self.join(|inner| {
            !inner
                .jobs
                .values()
                .any(|j| sets_conflict(&j.accesses, &probe))
        });
    }

    /// Block until every submitted job has completed, then propagate the
    /// first job panic if any. Helps the pool while waiting.
    pub(crate) fn flush(&self) {
        if self.is_serial() {
            return;
        }
        self.join(|inner| inner.jobs.is_empty());
        let panic = self.shared.inner.lock().expect("exec mutex").panic.take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// [`EffectExecutor::flush`] that swallows job panics — for `Drop`,
    /// where the wait is mandatory (jobs hold raw views of the world being
    /// dropped) but a double panic would abort.
    pub(crate) fn quiet_flush(&self) {
        if self.is_serial() {
            return;
        }
        self.join(|inner| inner.jobs.is_empty());
        self.shared.inner.lock().expect("exec mutex").panic.take();
    }

    /// Wait until `done(inner)` holds, running queued pool tasks on this
    /// thread whenever the condition is pending (so progress is guaranteed
    /// even with zero pool workers).
    fn join(&self, done: impl Fn(&Inner) -> bool) {
        let mut inner = self.shared.inner.lock().expect("exec mutex");
        loop {
            if done(&inner) {
                return;
            }
            drop(inner);
            if msort_cpu::pool::try_help() {
                inner = self.shared.inner.lock().expect("exec mutex");
                continue;
            }
            inner = self.shared.inner.lock().expect("exec mutex");
            if done(&inner) {
                return;
            }
            inner = self.shared.cv.wait(inner).expect("exec mutex");
        }
    }
}

/// `Send` raw view of a `&mut [K]` captured by an effect job. The job's
/// access set plus the conflict ordering guarantee exclusive use.
pub(crate) struct RawSlice<K> {
    ptr: *mut K,
    len: usize,
}

impl<K> RawSlice<K> {
    pub(crate) fn new(slice: &mut [K]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// The underlying allocation must still be live and no other code may
    /// access the range for the duration of the returned borrow — both
    /// hold inside a job whose access set covers this slice.
    pub(crate) unsafe fn as_mut<'a>(&self) -> &'a mut [K] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

// SAFETY: dereferences are guarded by the executor's conflict ordering.
unsafe impl<K: Send> Send for RawSlice<K> {}

/// `Send` raw view of a `&[K]` captured by an effect job.
pub(crate) struct RawSliceConst<K> {
    ptr: *const K,
    len: usize,
}

impl<K> RawSliceConst<K> {
    pub(crate) fn new(slice: &[K]) -> Self {
        Self {
            ptr: slice.as_ptr(),
            len: slice.len(),
        }
    }

    /// The captured range as raw byte bounds (overlap checks against the
    /// job's output window).
    pub(crate) fn byte_range(&self) -> (usize, usize) {
        let start = self.ptr as usize;
        (start, start + self.len * std::mem::size_of::<K>())
    }

    /// # Safety
    /// Same liveness/aliasing contract as [`RawSlice::as_mut`], for reads.
    pub(crate) unsafe fn as_ref<'a>(&self) -> &'a [K] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

// SAFETY: dereferences are guarded by the executor's conflict ordering.
unsafe impl<K: Sync> Send for RawSliceConst<K> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn w(buf: usize, lo: usize, hi: usize) -> Access {
        Access {
            buf,
            lo,
            hi,
            write: true,
        }
    }

    fn r(buf: usize, lo: usize, hi: usize) -> Access {
        Access {
            buf,
            lo,
            hi,
            write: false,
        }
    }

    #[test]
    fn conflict_rules() {
        assert!(w(0, 0, 10).conflicts(&r(0, 5, 15)));
        assert!(w(0, 0, 10).conflicts(&w(0, 9, 10)));
        assert!(!w(0, 0, 10).conflicts(&w(1, 0, 10)), "different buffers");
        assert!(!w(0, 0, 10).conflicts(&w(0, 10, 20)), "disjoint ranges");
        assert!(!r(0, 0, 10).conflicts(&r(0, 0, 10)), "read-read");
    }

    #[test]
    fn serial_mode_runs_inline() {
        let mut ex = EffectExecutor::new();
        ex.set_threads(1);
        let hit = AtomicUsize::new(0);
        ex.submit(vec![w(0, 0, 4)], {
            let hit = &hit as *const AtomicUsize as usize;
            move || {
                // SAFETY: inline execution — the reference outlives the call.
                unsafe { &*(hit as *const AtomicUsize) }.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1, "ran before submit returned");
        ex.flush();
    }

    #[test]
    fn conflicting_jobs_run_in_submission_order() {
        let mut ex = EffectExecutor::new();
        ex.set_threads(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..16u32 {
            let log = Arc::clone(&log);
            // All jobs write the same range: fully ordered.
            ex.submit(vec![w(0, 0, 8)], move || {
                log.lock().unwrap().push(i);
            });
        }
        ex.flush();
        assert_eq!(*log.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn disjoint_jobs_all_complete() {
        let mut ex = EffectExecutor::new();
        ex.set_threads(4);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..64usize {
            let count = Arc::clone(&count);
            ex.submit(vec![w(i % 8, (i / 8) * 10, (i / 8) * 10 + 10)], move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        ex.flush();
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn wait_writes_blocks_on_writers_only() {
        let mut ex = EffectExecutor::new();
        ex.set_threads(4);
        let data = Arc::new(Mutex::new(0u32));
        {
            let data = Arc::clone(&data);
            ex.submit(vec![w(3, 0, 100)], move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                *data.lock().unwrap() = 7;
            });
        }
        ex.wait_writes(3, 50, 60);
        assert_eq!(*data.lock().unwrap(), 7, "writer finished before return");
        // A pure reader on the same range must not block wait_writes.
        {
            let data = Arc::clone(&data);
            ex.submit(vec![r(3, 0, 100)], move || {
                let _ = *data.lock().unwrap();
            });
        }
        ex.wait_writes(3, 0, 100); // returns despite the live reader
        ex.flush();
    }

    #[test]
    fn chain_through_read_after_write() {
        // writer(buf 0) -> reader(buf 0)+writer(buf 1) -> reader(buf 1):
        // the diamond must execute in dependency order.
        let mut ex = EffectExecutor::new();
        ex.set_threads(4);
        let cell = Arc::new(Mutex::new(Vec::new()));
        for (i, acc) in [
            vec![w(0, 0, 10)],
            vec![r(0, 0, 10), w(1, 0, 10)],
            vec![r(1, 0, 10)],
        ]
        .into_iter()
        .enumerate()
        {
            let cell = Arc::clone(&cell);
            ex.submit(acc, move || cell.lock().unwrap().push(i));
        }
        ex.flush();
        assert_eq!(*cell.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn flush_propagates_job_panic() {
        let mut ex = EffectExecutor::new();
        ex.set_threads(4);
        ex.submit(vec![w(0, 0, 1)], || panic!("effect boom"));
        let err = catch_unwind(AssertUnwindSafe(|| ex.flush()));
        assert!(err.is_err());
        ex.flush(); // panic consumed; executor is reusable
    }

    #[test]
    fn raw_slice_round_trip() {
        let mut v = vec![1u32, 2, 3];
        let raw = RawSlice::new(&mut v);
        // SAFETY: exclusive access in this test.
        unsafe { raw.as_mut()[1] = 9 };
        assert_eq!(v, vec![1, 9, 3]);
        let rc = RawSliceConst::new(&v);
        assert_eq!(unsafe { rc.as_ref() }, &[1, 9, 3]);
        let (lo, hi) = rc.byte_range();
        assert_eq!(hi - lo, 12);
    }
}
