//! Input data distributions (paper Section 6.3, Figure 16).
//!
//! The paper sorts uniformly distributed keys in most experiments and studies
//! five distributions in Figure 16. We add two more used by our ablations:
//! a duplicate-heavy zipf-like distribution (stresses the leftmost-pivot
//! optimization of Section 5.2) and a constant distribution (the extreme case
//! where no P2P swap is ever necessary).

/// Data distribution of the generated keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Independent uniform keys over the full domain (paper default).
    Uniform,
    /// Gaussian around the domain midpoint; stddev is domain/20 like common
    /// sort benchmarks, clamped to the domain.
    Normal,
    /// Already sorted ascending — minimal P2P swap volume (pivot = 0).
    Sorted,
    /// Sorted descending — maximal P2P swap volume (pivot = n/2 everywhere).
    ReverseSorted,
    /// Sorted ascending, then `swap_fraction` of random adjacent-window
    /// swaps (the paper's "nearly-sorted"); we use 1% of positions perturbed
    /// within a window of 100.
    NearlySorted,
    /// Zipf-like duplicate-heavy distribution with the given skew `s × 100`
    /// (stored as integer permille to keep `Eq`-ish semantics and hashing
    /// simple); many duplicates make leftmost-pivot selection matter.
    ZipfDuplicates {
        /// Skew parameter multiplied by 1000 (e.g. `1200` means `s = 1.2`).
        skew_permille: u32,
    },
    /// Every key identical — degenerate case exercised by tests.
    Constant,
}

impl Distribution {
    /// The five distributions evaluated in the paper's Figure 16, in the
    /// order they appear there.
    #[must_use]
    pub const fn paper_set() -> [Distribution; 5] {
        [
            Distribution::Uniform,
            Distribution::Normal,
            Distribution::Sorted,
            Distribution::ReverseSorted,
            Distribution::NearlySorted,
        ]
    }

    /// Short label used in experiment output (matches Figure 16's legend).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Normal => "normal",
            Distribution::Sorted => "sorted",
            Distribution::ReverseSorted => "reverse-sorted",
            Distribution::NearlySorted => "nearly-sorted",
            Distribution::ZipfDuplicates { .. } => "zipf-duplicates",
            Distribution::Constant => "constant",
        }
    }

    /// Expected fraction of each chunk swapped during a pair-wise P2P merge
    /// of two chunks drawn from this distribution (used by the timing-only
    /// pivot model and sanity-checked against measured pivots in tests).
    ///
    /// For independent identically distributed chunks the pivot falls near
    /// the middle (`0.5`); for globally sorted input the chunks are already
    /// ordered (`0.0`); for reverse-sorted input the entire half must move
    /// (`1.0` at the leaf stage, since chunk `i` holds strictly larger keys
    /// than chunk `i + 1`).
    #[must_use]
    pub fn expected_swap_fraction(self) -> f64 {
        match self {
            Distribution::Uniform | Distribution::Normal => 0.5,
            Distribution::Sorted | Distribution::Constant => 0.0,
            Distribution::ReverseSorted => 1.0,
            Distribution::NearlySorted => 0.01,
            Distribution::ZipfDuplicates { .. } => 0.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_five() {
        assert_eq!(Distribution::paper_set().len(), 5);
        assert_eq!(Distribution::paper_set()[0], Distribution::Uniform);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = Distribution::paper_set()
            .iter()
            .map(|d| d.label())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn swap_fractions_in_unit_interval() {
        for d in Distribution::paper_set() {
            let f = d.expected_swap_fraction();
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
