//! Key-value pairs: sort by key, payload rides along.
//!
//! Database sorting rarely moves bare keys — index builds and merge-joins
//! sort `(key, row-id)` pairs, which is why Thrust/CUB ship
//! `sort_by_key`/`SortPairs` variants. [`Pair`] makes every algorithm in
//! this workspace a by-key sort: the radix image (and therefore every
//! comparison and every digit) comes from the key alone, while the whole
//! pair moves through histograms, scatters, swaps, and merges.
//!
//! The payload doubles the moved bytes for 32-bit keys — the same
//! transfer/bandwidth penalty real GPU pair-sorting pays — which the cost
//! models pick up through [`DataType::key_bytes`] (bytes per *element*).

use crate::keys::{DataType, SortKey};

/// A `(key, payload)` pair ordered by key only.
///
/// `from_radix` reconstructs a pair with a zero payload (generators can
/// only synthesize keys); attach real payloads with [`Pair::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pair<K> {
    /// The sort key.
    pub key: K,
    /// The payload carried alongside (row id, offset, ...).
    pub value: u32,
}

impl<K> Pair<K> {
    /// Construct a pair.
    #[must_use]
    pub fn new(key: K, value: u32) -> Self {
        Self { key, value }
    }
}

impl<K: SortKey> SortKey for Pair<K> {
    type Radix = K::Radix;

    const DATA_TYPE: DataType = match K::DATA_TYPE {
        DataType::U32 | DataType::I32 | DataType::F32 => DataType::Kv32,
        DataType::U64 | DataType::I64 | DataType::F64 => DataType::Kv64,
        // Nested pairs would mis-size every cost model; forbid them.
        DataType::Kv32 | DataType::Kv64 => panic!("pairs of pairs are not supported"),
    };

    #[inline]
    fn to_radix(self) -> Self::Radix {
        self.key.to_radix()
    }

    #[inline]
    fn from_radix(bits: Self::Radix) -> Self {
        Pair {
            key: K::from_radix(bits),
            value: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_sorted;

    /// Stable by-key reference sort (the real radix sorts live in
    /// msort-cpu, which depends on this crate).
    fn stable_by_key<K: SortKey>(data: &mut [K]) {
        data.sort_by_key(|a| a.to_radix());
    }

    #[test]
    fn pair_orders_by_key_only() {
        let a = Pair::new(5u32, 99);
        let b = Pair::new(7u32, 1);
        assert!(a.to_radix() < b.to_radix());
        // Equal keys, different payloads: equal in the sort order.
        let c = Pair::new(5u32, 1);
        assert_eq!(a.to_radix(), c.to_radix());
    }

    #[test]
    fn pair_data_types_and_sizes() {
        assert_eq!(<Pair<u32> as SortKey>::DATA_TYPE, DataType::Kv32);
        assert_eq!(<Pair<f32> as SortKey>::DATA_TYPE, DataType::Kv32);
        assert_eq!(<Pair<u64> as SortKey>::DATA_TYPE, DataType::Kv64);
        assert_eq!(DataType::Kv32.key_bytes(), 8);
        assert_eq!(DataType::Kv64.key_bytes(), 12);
    }

    #[test]
    fn stable_sort_keeps_payload_order() {
        // A stable by-key sort of duplicate keys preserves payload order.
        let mut pairs: Vec<Pair<u32>> = (0..1000u32).map(|i| Pair::new(i % 10, i)).collect();
        stable_by_key(&mut pairs);
        assert!(is_sorted(&pairs));
        for w in pairs.windows(2) {
            if w[0].key == w[1].key {
                assert!(w[0].value < w[1].value, "stability violated");
            }
        }
    }

    #[test]
    fn float_keyed_pairs_total_order() {
        let mut pairs = [
            Pair::new(f32::NAN, 1),
            Pair::new(-0.0f32, 2),
            Pair::new(f32::NEG_INFINITY, 3),
            Pair::new(1.5f32, 4),
        ];
        pairs.sort_by_key(|a| a.to_radix());
        assert_eq!(pairs[0].value, 3);
        assert_eq!(pairs[1].value, 2);
        assert_eq!(pairs[2].value, 4);
        assert_eq!(pairs[3].value, 1); // NaN sorts last
    }
}
