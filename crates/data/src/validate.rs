//! Sortedness and permutation validation used by tests, examples, and the
//! experiment harness (every simulated sort is checked for correctness on
//! its physical payload before timings are reported).

use crate::keys::SortKey;

/// Outcome of a full sort validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortValidation {
    /// Output is sorted and a permutation of the input.
    Valid,
    /// Output is not in non-decreasing order; holds the first bad index.
    NotSorted {
        /// Index `i` such that `out[i] > out[i + 1]`.
        index: usize,
    },
    /// Output is sorted but is not a permutation of the input.
    NotPermutation,
    /// Output length differs from input length.
    LengthMismatch {
        /// Input length.
        expected: usize,
        /// Output length.
        actual: usize,
    },
}

impl SortValidation {
    /// `true` when the sort is fully valid.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self == SortValidation::Valid
    }
}

/// `true` iff `data` is non-decreasing in the key total order.
#[must_use]
pub fn is_sorted<K: SortKey>(data: &[K]) -> bool {
    first_unsorted_index(data).is_none()
}

/// First index `i` with `data[i] > data[i + 1]`, if any.
#[must_use]
pub fn first_unsorted_index<K: SortKey>(data: &[K]) -> Option<usize> {
    data.windows(2)
        .position(|w| w[0].to_radix() > w[1].to_radix())
}

/// `true` iff `a` and `b` contain the same keys with the same multiplicities.
///
/// Runs in `O(n log n)` by sorting radix images; intended for test-scale
/// data, not for 60-billion-key workloads.
#[must_use]
pub fn same_multiset<K: SortKey>(a: &[K], b: &[K]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ia: Vec<K::Radix> = a.iter().map(|k| k.to_radix()).collect();
    let mut ib: Vec<K::Radix> = b.iter().map(|k| k.to_radix()).collect();
    ia.sort_unstable();
    ib.sort_unstable();
    ia == ib
}

/// Validate that `output` is a sorted permutation of `input`.
#[must_use]
pub fn validate_sort<K: SortKey>(input: &[K], output: &[K]) -> SortValidation {
    if input.len() != output.len() {
        return SortValidation::LengthMismatch {
            expected: input.len(),
            actual: output.len(),
        };
    }
    if let Some(i) = first_unsorted_index(output) {
        return SortValidation::NotSorted { index: i };
    }
    if !same_multiset(input, output) {
        return SortValidation::NotPermutation;
    }
    SortValidation::Valid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_detection() {
        assert!(is_sorted::<u32>(&[]));
        assert!(is_sorted(&[1u32]));
        assert!(is_sorted(&[1u32, 1, 2, 3]));
        assert!(!is_sorted(&[2u32, 1]));
        assert_eq!(first_unsorted_index(&[1u32, 3, 2, 4]), Some(1));
    }

    #[test]
    fn float_sortedness_uses_total_order() {
        assert!(is_sorted(&[-0.0f32, 0.0]));
        assert!(!is_sorted(&[0.0f32, -0.0]));
    }

    #[test]
    fn multiset_checks() {
        assert!(same_multiset(&[3u32, 1, 2], &[1, 2, 3]));
        assert!(!same_multiset(&[1u32, 1, 2], &[1, 2, 2]));
        assert!(!same_multiset(&[1u32], &[1, 1]));
    }

    #[test]
    fn validate_full() {
        let input = [5u32, 3, 9, 1];
        assert!(validate_sort(&input, &[1, 3, 5, 9]).is_valid());
        assert_eq!(
            validate_sort(&input, &[1, 5, 3, 9]),
            SortValidation::NotSorted { index: 1 }
        );
        assert_eq!(
            validate_sort(&input, &[1, 3, 5, 10]),
            SortValidation::NotPermutation
        );
        assert_eq!(
            validate_sort(&input, &[1, 3, 5]),
            SortValidation::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }
}
