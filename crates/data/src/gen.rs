//! Deterministic workload generators.
//!
//! All generators are seedable so every experiment, test, and benchmark is
//! reproducible. Generation is defined on the *radix image* domain and then
//! decoded, so the same [`Distribution`] produces order-equivalent data for
//! every key type (a "sorted" f32 workload really is ascending in the float
//! total order).

use crate::dist::Distribution;
use crate::keys::{RadixImage, SortKey};
use crate::rng::Rng;

/// A seeded generator for one distribution.
///
/// ```
/// use msort_data::{DataGenerator, Distribution};
/// let gen = DataGenerator::new(Distribution::Uniform, 42);
/// let keys: Vec<u32> = gen.generate(1000);
/// assert_eq!(keys.len(), 1000);
/// // Same seed, same data:
/// assert_eq!(keys, DataGenerator::new(Distribution::Uniform, 42).generate::<u32>(1000));
/// ```
#[derive(Debug, Clone)]
pub struct DataGenerator {
    dist: Distribution,
    seed: u64,
}

impl DataGenerator {
    /// Create a generator for `dist` with the given `seed`.
    #[must_use]
    pub fn new(dist: Distribution, seed: u64) -> Self {
        Self { dist, seed }
    }

    /// The distribution this generator produces.
    #[must_use]
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Generate `n` keys into a fresh vector.
    #[must_use]
    pub fn generate<K: SortKey>(&self, n: usize) -> Vec<K> {
        let mut out = Vec::with_capacity(n);
        self.generate_extend(n, &mut out);
        out
    }

    /// Generate `n` keys, appending to `out` (reuses its capacity).
    pub fn generate_extend<K: SortKey>(&self, n: usize, out: &mut Vec<K>) {
        let start = out.len();
        out.reserve(n);
        let mut rng = Rng::seed_from_u64(self.seed);
        match self.dist {
            Distribution::Uniform => {
                for _ in 0..n {
                    out.push(K::from_radix(uniform_image::<K>(&mut rng)));
                }
            }
            Distribution::Normal => {
                for _ in 0..n {
                    out.push(K::from_radix(normal_image::<K>(&mut rng)));
                }
            }
            Distribution::Sorted => {
                extend_uniform_sorted::<K>(n, &mut rng, out);
            }
            Distribution::ReverseSorted => {
                extend_uniform_sorted::<K>(n, &mut rng, out);
                out[start..].reverse();
            }
            Distribution::NearlySorted => {
                extend_uniform_sorted::<K>(n, &mut rng, out);
                perturb(&mut out[start..], &mut rng);
            }
            Distribution::ZipfDuplicates { skew_permille } => {
                let skew = f64::from(skew_permille) / 1000.0;
                let zipf = ZipfSampler::new(1024, skew);
                for _ in 0..n {
                    let rank = zipf.sample(&mut rng);
                    // Spread the 1024 distinct values over the full domain so
                    // pivots still land at interesting positions.
                    let img = value_at_fraction::<K>((rank as f64 + 0.5) / 1024.0);
                    out.push(K::from_radix(img));
                }
            }
            Distribution::Constant => {
                let img = value_at_fraction::<K>(0.5);
                out.resize(start + n, K::from_radix(img));
            }
        }
        debug_assert_eq!(out.len(), start + n);
    }
}

/// Generate `n` keys of distribution `dist` with `seed` (convenience form).
#[must_use]
pub fn generate<K: SortKey>(dist: Distribution, n: usize, seed: u64) -> Vec<K> {
    DataGenerator::new(dist, seed).generate(n)
}

/// Generate into an existing vector, clearing it first.
pub fn generate_into<K: SortKey>(dist: Distribution, n: usize, seed: u64, out: &mut Vec<K>) {
    out.clear();
    DataGenerator::new(dist, seed).generate_extend(n, out);
}

fn uniform_image<K: SortKey>(rng: &mut Rng) -> K::Radix {
    image_from_u64::<K>(rng.u64())
}

/// Gaussian over the image domain centered at the midpoint, clamped.
fn normal_image<K: SortKey>(rng: &mut Rng) -> K::Radix {
    // Box-Muller on two uniforms; no external distribution crate needed.
    let u1: f64 = rng.f64().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.f64();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let frac = (0.5 + z / 20.0).clamp(0.0, 1.0);
    value_at_fraction::<K>(frac)
}

/// Sorted uniform sample: draw i.i.d. uniforms and sort the image values.
fn extend_uniform_sorted<K: SortKey>(n: usize, rng: &mut Rng, out: &mut Vec<K>) {
    let start = out.len();
    for _ in 0..n {
        out.push(K::from_radix(uniform_image::<K>(rng)));
    }
    out[start..].sort_unstable_by(|a, b| a.total_cmp_key(b));
}

/// Swap ~1% of positions with a partner within a window of 100 slots.
fn perturb<K: SortKey>(data: &mut [K], rng: &mut Rng) {
    if data.len() < 2 {
        return;
    }
    let swaps = (data.len() / 100).max(1);
    for _ in 0..swaps {
        let i = rng.usize_in(0..data.len());
        let lo = i.saturating_sub(50);
        let hi = (i + 50).min(data.len() - 1);
        let j = rng.usize_in_incl(lo, hi);
        data.swap(i, j);
    }
}

/// Map a fraction in `[0, 1]` onto the radix image domain.
fn value_at_fraction<K: SortKey>(frac: f64) -> K::Radix {
    let max = K::Radix::max_value().to_u64() as f64;
    K::Radix::from_u64_trunc((frac.clamp(0.0, 1.0) * max) as u64)
}

fn image_from_u64<K: SortKey>(v: u64) -> K::Radix {
    // Use the high bits for 32-bit keys so they still get well-mixed entropy.
    if <K::Radix as RadixImage>::BITS == 32 {
        K::Radix::from_u64_trunc(v >> 32)
    } else {
        K::Radix::from_u64_trunc(v)
    }
}

/// Simple zipf sampler over ranks `0..n` using precomputed cumulative
/// weights (n is small — 1024 — so table lookup via binary search is fine).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, skew: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::is_sorted;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = generate(Distribution::Uniform, 1000, 7);
        let b: Vec<u32> = generate(Distribution::Uniform, 1000, 7);
        let c: Vec<u32> = generate(Distribution::Uniform, 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_is_sorted_for_all_types() {
        assert!(is_sorted(&generate::<u32>(Distribution::Sorted, 500, 1)));
        assert!(is_sorted(&generate::<i32>(Distribution::Sorted, 500, 1)));
        assert!(is_sorted(&generate::<f32>(Distribution::Sorted, 500, 1)));
        assert!(is_sorted(&generate::<u64>(Distribution::Sorted, 500, 1)));
        assert!(is_sorted(&generate::<i64>(Distribution::Sorted, 500, 1)));
        assert!(is_sorted(&generate::<f64>(Distribution::Sorted, 500, 1)));
    }

    #[test]
    fn reverse_sorted_is_descending() {
        let v: Vec<u32> = generate(Distribution::ReverseSorted, 500, 3);
        let mut rev = v.clone();
        rev.reverse();
        assert!(is_sorted(&rev));
        assert!(!is_sorted(&v));
    }

    #[test]
    fn nearly_sorted_is_mostly_sorted() {
        let v: Vec<u32> = generate(Distribution::NearlySorted, 10_000, 3);
        let inversions = v.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions > 0, "perturbation did nothing");
        assert!(
            inversions < v.len() / 20,
            "too many inversions: {inversions}"
        );
    }

    #[test]
    fn normal_is_concentrated() {
        let v: Vec<u32> = generate(Distribution::Normal, 10_000, 5);
        let mid = u32::MAX / 2;
        let band = u32::MAX / 4;
        let inside = v
            .iter()
            .filter(|&&x| x > mid - band && x < mid + band)
            .count();
        // 5 sigma band => essentially everything inside.
        assert!(inside > 9_900, "only {inside} inside the band");
    }

    #[test]
    fn zipf_has_many_duplicates() {
        let v: Vec<u32> = generate(
            Distribution::ZipfDuplicates {
                skew_permille: 1200,
            },
            10_000,
            5,
        );
        let mut uniq = v.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 1024);
        assert!(uniq.len() > 10);
    }

    #[test]
    fn constant_is_constant() {
        let v: Vec<u64> = generate(Distribution::Constant, 100, 5);
        assert!(v.iter().all(|&x| x == v[0]));
    }

    #[test]
    fn generate_into_reuses_buffer() {
        let mut buf: Vec<u32> = Vec::new();
        generate_into(Distribution::Uniform, 100, 1, &mut buf);
        assert_eq!(buf.len(), 100);
        generate_into(Distribution::Sorted, 50, 1, &mut buf);
        assert_eq!(buf.len(), 50);
        assert!(is_sorted(&buf));
    }

    #[test]
    fn uniform_floats_are_finite_spread() {
        let v: Vec<f64> = generate(Distribution::Normal, 1000, 9);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
