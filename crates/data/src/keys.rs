//! Sortable key types and order-preserving radix encodings.
//!
//! The paper evaluates 32-bit (`u32`, `i32`, `f32`) and 64-bit (`u64`, `i64`,
//! `f64`) keys (Section 6.3). Radix sorts require an unsigned bit image whose
//! unsigned order equals the key's natural order:
//!
//! * unsigned integers: identity;
//! * signed integers: flip the sign bit;
//! * IEEE-754 floats: flip the sign bit for positive values, flip *all* bits
//!   for negative values (the classic total-order transform used by GPU radix
//!   sorts).
//!
//! All transforms are exact involutions via [`SortKey::from_radix`], so a
//! radix sort on the image followed by decoding yields the totally ordered
//! sequence (for floats this is the IEEE total order: `-NaN < -inf < ... <
//! -0.0 < +0.0 < ... < +inf < +NaN`).

use std::fmt::Debug;

/// Identifies a key type at runtime; used by experiment configs and the
/// Section 6.3 data-type experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit unsigned integer.
    U32,
    /// 32-bit signed integer.
    I32,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit unsigned integer.
    U64,
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// 32-bit key + 32-bit payload pair (8 bytes per element); see
    /// [`crate::pairs::Pair`].
    Kv32,
    /// 64-bit key + 32-bit payload pair (12 bytes per element).
    Kv64,
}

impl DataType {
    /// Size of one *element* in bytes (key plus payload for pair types) —
    /// the unit every transfer- and bandwidth-cost model works in.
    #[must_use]
    pub const fn key_bytes(self) -> u64 {
        match self {
            DataType::U32 | DataType::I32 | DataType::F32 => 4,
            DataType::U64 | DataType::I64 | DataType::F64 | DataType::Kv32 => 8,
            DataType::Kv64 => 12,
        }
    }

    /// Human-readable name matching the paper's terminology.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DataType::U32 => "u32",
            DataType::I32 => "i32",
            DataType::F32 => "f32",
            DataType::U64 => "u64",
            DataType::I64 => "i64",
            DataType::F64 => "f64",
            DataType::Kv32 => "kv32",
            DataType::Kv64 => "kv64",
        }
    }

    /// All supported data types, in the order the paper reports them.
    #[must_use]
    pub const fn all() -> [DataType; 6] {
        [
            DataType::U32,
            DataType::I32,
            DataType::F32,
            DataType::U64,
            DataType::I64,
            DataType::F64,
        ]
    }
}

/// A key type sortable by every algorithm in this workspace.
///
/// `Radix` is the order-preserving unsigned image used by radix sorts; the
/// comparison used by merge phases is `Ord` on that image, which gives floats
/// the IEEE total order without any `PartialOrd` pitfalls.
pub trait SortKey: Copy + Send + Sync + Debug + 'static {
    /// Unsigned integer image type (`u32` or `u64`).
    type Radix: RadixImage;

    /// Runtime tag for this key type.
    const DATA_TYPE: DataType;

    /// Map to the order-preserving unsigned image.
    fn to_radix(self) -> Self::Radix;

    /// Inverse of [`SortKey::to_radix`].
    fn from_radix(bits: Self::Radix) -> Self;

    /// Total-order comparison via the radix image.
    #[inline]
    fn total_cmp_key(&self, other: &Self) -> std::cmp::Ordering {
        self.to_radix().cmp(&other.to_radix())
    }

    /// `true` if `self` sorts at or before `other` in the total order.
    #[inline]
    fn le_key(&self, other: &Self) -> bool {
        self.to_radix() <= other.to_radix()
    }
}

/// Operations required of a radix image: an unsigned integer wide enough to
/// hold the key, supporting digit extraction for LSB/MSB radix sorts.
pub trait RadixImage: Copy + Send + Sync + Ord + Debug + 'static {
    /// Number of bits in the image (32 or 64).
    const BITS: u32;

    /// Extract `width` bits starting at bit `shift` as a `usize` digit.
    fn digit(self, shift: u32, width: u32) -> usize;

    /// The zero image (smallest value).
    fn zero() -> Self;

    /// The all-ones image (largest value).
    fn max_value() -> Self;

    /// Construct an image from a `u64`, truncating high bits for 32-bit
    /// images (used by generators to map entropy/fractions onto the domain).
    fn from_u64_trunc(v: u64) -> Self;

    /// Widen the image to a `u64` (zero-extending).
    fn to_u64(self) -> u64;
}

impl RadixImage for u32 {
    const BITS: u32 = 32;

    #[inline]
    fn digit(self, shift: u32, width: u32) -> usize {
        ((self >> shift) & ((1u32 << width) - 1)) as usize
    }

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn max_value() -> Self {
        u32::MAX
    }

    #[inline]
    fn from_u64_trunc(v: u64) -> Self {
        v as u32
    }

    #[inline]
    fn to_u64(self) -> u64 {
        u64::from(self)
    }
}

impl RadixImage for u64 {
    const BITS: u32 = 64;

    #[inline]
    fn digit(self, shift: u32, width: u32) -> usize {
        ((self >> shift) & ((1u64 << width) - 1)) as usize
    }

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn max_value() -> Self {
        u64::MAX
    }

    #[inline]
    fn from_u64_trunc(v: u64) -> Self {
        v
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self
    }
}

impl SortKey for u32 {
    type Radix = u32;
    const DATA_TYPE: DataType = DataType::U32;

    #[inline]
    fn to_radix(self) -> u32 {
        self
    }

    #[inline]
    fn from_radix(bits: u32) -> Self {
        bits
    }
}

impl SortKey for u64 {
    type Radix = u64;
    const DATA_TYPE: DataType = DataType::U64;

    #[inline]
    fn to_radix(self) -> u64 {
        self
    }

    #[inline]
    fn from_radix(bits: u64) -> Self {
        bits
    }
}

impl SortKey for i32 {
    type Radix = u32;
    const DATA_TYPE: DataType = DataType::I32;

    #[inline]
    fn to_radix(self) -> u32 {
        (self as u32) ^ (1 << 31)
    }

    #[inline]
    fn from_radix(bits: u32) -> Self {
        (bits ^ (1 << 31)) as i32
    }
}

impl SortKey for i64 {
    type Radix = u64;
    const DATA_TYPE: DataType = DataType::I64;

    #[inline]
    fn to_radix(self) -> u64 {
        (self as u64) ^ (1 << 63)
    }

    #[inline]
    fn from_radix(bits: u64) -> Self {
        (bits ^ (1 << 63)) as i64
    }
}

impl SortKey for f32 {
    type Radix = u32;
    const DATA_TYPE: DataType = DataType::F32;

    #[inline]
    fn to_radix(self) -> u32 {
        let bits = self.to_bits();
        // Negative floats: flip everything so bigger magnitude sorts first.
        // Non-negative: just set the sign bit so they sort above negatives.
        if bits >> 31 == 1 {
            !bits
        } else {
            bits | (1 << 31)
        }
    }

    #[inline]
    fn from_radix(bits: u32) -> Self {
        let bits = if bits >> 31 == 1 {
            bits & !(1 << 31)
        } else {
            !bits
        };
        f32::from_bits(bits)
    }
}

impl SortKey for f64 {
    type Radix = u64;
    const DATA_TYPE: DataType = DataType::F64;

    #[inline]
    fn to_radix(self) -> u64 {
        let bits = self.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }

    #[inline]
    fn from_radix(bits: u64) -> Self {
        let bits = if bits >> 63 == 1 {
            bits & !(1 << 63)
        } else {
            !bits
        };
        f64::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<K: SortKey + PartialEq>(k: K) {
        assert!(K::from_radix(k.to_radix()) == k);
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0u32, 1, 42, u32::MAX, u32::MAX - 1] {
            roundtrip(v);
        }
        for v in [0u64, 1, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn signed_roundtrip_and_order() {
        let vals = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for v in vals {
            roundtrip(v);
        }
        for w in vals.windows(2) {
            assert!(w[0].to_radix() < w[1].to_radix(), "{} !< {}", w[0], w[1]);
        }
        let vals64 = [i64::MIN, -5, 0, 5, i64::MAX];
        for w in vals64.windows(2) {
            assert!(w[0].to_radix() < w[1].to_radix());
        }
    }

    #[test]
    fn float_roundtrip_and_order() {
        let vals = [
            f32::NEG_INFINITY,
            -1.0e30,
            -2.5,
            -1.0,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            2.5,
            1.0e30,
            f32::INFINITY,
        ];
        for v in vals {
            roundtrip(v);
        }
        for w in vals.windows(2) {
            assert!(w[0].to_radix() <= w[1].to_radix(), "{} !<= {}", w[0], w[1]);
        }
        // -0.0 and 0.0 are distinct in the total order but adjacent.
        assert!((-0.0f32).to_radix() < 0.0f32.to_radix());
    }

    #[test]
    fn float_nan_total_order() {
        let nan = f32::NAN;
        assert!(nan.to_radix() > f32::INFINITY.to_radix());
        let neg_nan = f32::from_bits(f32::NAN.to_bits() | (1 << 31));
        assert!(neg_nan.to_radix() < f32::NEG_INFINITY.to_radix());
    }

    #[test]
    fn f64_order() {
        let vals = [f64::NEG_INFINITY, -1.5, -0.0, 0.0, 1.5, f64::INFINITY];
        for v in vals {
            roundtrip(v);
        }
        for w in vals.windows(2) {
            assert!(w[0].to_radix() <= w[1].to_radix());
        }
    }

    #[test]
    fn digit_extraction() {
        let v: u32 = 0xAB_CD_12_34;
        assert_eq!(v.digit(0, 8), 0x34);
        assert_eq!(v.digit(8, 8), 0x12);
        assert_eq!(v.digit(16, 8), 0xCD);
        assert_eq!(v.digit(24, 8), 0xAB);
        assert_eq!(v.digit(4, 4), 0x3);
        let w: u64 = 0xFF00_0000_0000_00EE;
        assert_eq!(w.digit(0, 8), 0xEE);
        assert_eq!(w.digit(56, 8), 0xFF);
    }

    #[test]
    fn data_type_bytes() {
        assert_eq!(DataType::U32.key_bytes(), 4);
        assert_eq!(DataType::F64.key_bytes(), 8);
        assert_eq!(DataType::all().len(), 6);
    }
}
