//! Sort keys, data distributions, and workload generators.
//!
//! This crate provides the data layer of the multi-GPU sorting reproduction:
//!
//! * [`SortKey`] — the trait implemented by every sortable key type. Radix
//!   sorts operate on an order-preserving unsigned bit image
//!   ([`SortKey::to_radix`]), which is how signed integers and IEEE-754
//!   floats are sorted with the same machinery as unsigned integers
//!   (mirroring how Thrust/CUB handle these types on real GPUs).
//! * [`Distribution`] — the five input distributions studied in the paper's
//!   Section 6.3 (uniform, normal, sorted, reverse-sorted, nearly-sorted)
//!   plus two extras used by ablations (zipf-like duplicate-heavy and
//!   constant).
//! * [`generate`]/[`generate_into`] — deterministic, seedable generators.
//! * [`validate`] — sortedness and permutation checks used by every test.

pub mod dist;
pub mod gen;
pub mod keys;
pub mod pairs;
pub mod rng;
pub mod validate;

pub use dist::Distribution;
pub use gen::{generate, generate_into, DataGenerator};
pub use keys::{DataType, SortKey};
pub use pairs::Pair;
pub use rng::Rng;
pub use validate::{is_sorted, same_multiset, validate_sort, SortValidation};

/// Number of bytes in one gibibyte; used for reporting buffer sizes the way
/// the paper does ("4 GB buffers", "16 GB of keys").
pub const GIB: u64 = 1 << 30;

/// Number of bytes in one gigabyte (decimal); interconnect bandwidths in the
/// paper are quoted in GB/s (decimal), so throughput reporting uses this.
pub const GB: u64 = 1_000_000_000;
