//! Minimal deterministic pseudo-random number generator.
//!
//! The build environment is fully offline, so instead of depending on the
//! `rand` crate the workspace uses this self-contained generator: SplitMix64
//! for seeding and xoshiro256++ for the stream — the same construction the
//! `rand` ecosystem's small RNGs use. It is deterministic across platforms
//! and plenty good statistically for workload generation and randomized
//! tests (it is *not* cryptographic, and does not need to be).

/// A seedable, deterministic 64-bit PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Identical seeds yield
    /// identical streams on every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, as
        // recommended by the xoshiro authors (avoids all-zero states).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is an empty range");
        // Lemire-style rejection-free-enough reduction: widening multiply
        // keeps the modulo bias below 2^-64 × bound — irrelevant for the
        // bounds used here (≤ 2^32).
        (((u128::from(self.u64())) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn usize_in_incl(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(range.end - range.start)
    }

    /// Uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given `rate` (events per
    /// unit time): the inter-arrival time of a Poisson process. Inverse
    /// CDF of `1 - f64()`, so the argument to `ln` is in `(0, 1]` and the
    /// result is always finite and non-negative.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -(1.0 - self.f64()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.usize_in(3..17);
            assert!((3..17).contains(&x));
            let y = r.usize_in_incl(5, 5);
            assert_eq!(y, 5);
            let z = r.u32_in(0..1000);
            assert!(z < 1000);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(4);
        let _ = r.usize_in(5..5);
    }

    #[test]
    fn exp_matches_the_configured_rate() {
        let mut r = Rng::seed_from_u64(5);
        let rate = 250.0;
        let n = 20_000;
        let mean = (0..n).map(|_| r.exp(rate)).sum::<f64>() / f64::from(n);
        assert!(
            (mean - 1.0 / rate).abs() < 0.05 / rate,
            "mean inter-arrival {mean} vs expected {}",
            1.0 / rate
        );
        let mut r2 = Rng::seed_from_u64(5);
        assert!((0..64).all(|_| r2.exp(rate).is_finite()));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exp_rejects_zero_rate() {
        let _ = Rng::seed_from_u64(6).exp(0.0);
    }
}
