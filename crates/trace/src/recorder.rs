//! The [`Recorder`]: a cloneable handle every layer writes trace events
//! through.
//!
//! A recorder is either **enabled** — all clones share one [`TraceData`]
//! buffer — or **disabled**, in which case every method is a cheap no-op
//! (one `Option` discriminant test, no allocation). Instrumentation sites
//! that need to *build* strings for event names should guard on
//! [`Recorder::is_enabled`] so a disabled recorder costs nothing beyond
//! the branch.
//!
//! The recorder is purely observational by contract: enabling it must not
//! change a single simulated clock value or output byte. Timestamps are
//! plain `u64` nanoseconds (the same unit as `msort_sim::SimTime`), which
//! keeps this crate dependency-free and usable from every layer.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Well-known track-group names, so producers and exporters agree.
pub mod groups {
    /// Per-stream GPU op spans (one track per stream).
    pub const GPU: &str = "gpu streams";
    /// Per-link utilization counters.
    pub const LINKS: &str = "links";
    /// Per-flow lifecycle async events.
    pub const FLOWS: &str = "flows";
    /// Fault/restore instants.
    pub const FAULTS: &str = "faults";
    /// Service-level tracks: admission decisions and the elastic-fleet
    /// size counter.
    pub const SERVICE: &str = "service";
    /// Per-tenant job-span group name (`tenant3` for tenant id 3).
    #[must_use]
    pub fn tenant(id: u32) -> String {
        format!("tenant{id}")
    }
}

/// Index of a [`Track`] inside a [`TraceData`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

/// One named row in the trace. Tracks with the same `group` render as one
/// process (track group) in Perfetto; each track is a thread within it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// The track group ("gpu streams", "links", "tenant0", ...).
    pub group: String,
    /// The row name within the group ("stream 3", "GPU 0 ⇄ GPU 1", ...).
    pub name: String,
}

/// An event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument.
    Str(String),
    /// An unsigned integer argument.
    U64(u64),
    /// A float argument (must be finite; exporters clamp non-finite to 0).
    F64(f64),
}

/// The time shape of an event. All timestamps are simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A closed duration span on its track.
    Span {
        /// Span start.
        start_ns: u64,
        /// Span end (`>= start_ns`).
        end_ns: u64,
    },
    /// A point-in-time marker.
    Instant {
        /// When it happened.
        at_ns: u64,
    },
    /// A sample of a named counter series.
    Counter {
        /// Sample time.
        at_ns: u64,
        /// Sample value.
        value: f64,
    },
    /// Start of an async lifetime (matched to the end by `id`).
    AsyncBegin {
        /// Begin time.
        at_ns: u64,
        /// Lifetime id, unique within the event's category.
        id: u64,
    },
    /// A point event inside an async lifetime.
    AsyncInstant {
        /// Event time.
        at_ns: u64,
        /// Lifetime id.
        id: u64,
    },
    /// End of an async lifetime.
    AsyncEnd {
        /// End time.
        at_ns: u64,
        /// Lifetime id.
        id: u64,
    },
}

impl EventKind {
    /// The event's (start) timestamp, for ordering and horizon math.
    #[must_use]
    pub fn start_ns(&self) -> u64 {
        match *self {
            EventKind::Span { start_ns, .. } => start_ns,
            EventKind::Instant { at_ns }
            | EventKind::Counter { at_ns, .. }
            | EventKind::AsyncBegin { at_ns, .. }
            | EventKind::AsyncInstant { at_ns, .. }
            | EventKind::AsyncEnd { at_ns, .. } => at_ns,
        }
    }

    /// The event's end timestamp (equals the start for point events).
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        match *self {
            EventKind::Span { end_ns, .. } => end_ns,
            _ => self.start_ns(),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The track the event lives on.
    pub track: TrackId,
    /// Event name (op name, link name, "job", "rate", ...).
    pub name: String,
    /// Category ("HtoD", "flow", "fault", "job", ...). Async events are
    /// matched by `(cat, id)`.
    pub cat: String,
    /// When, and what shape.
    pub kind: EventKind,
    /// Key/value arguments.
    pub args: Vec<(String, ArgValue)>,
}

/// Everything one recording produced: the track table plus the events, in
/// emission order (which is simulation-time order, since producers only
/// record at the current clock).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Tracks, in first-use order. [`TrackId`]s index into this.
    pub tracks: Vec<Track>,
    /// Events, in emission order.
    pub events: Vec<Event>,
}

impl TraceData {
    /// The track an event points at.
    #[must_use]
    pub fn track(&self, id: TrackId) -> &Track {
        &self.tracks[id.0 as usize]
    }

    /// Latest timestamp in the trace (0 when empty).
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.kind.end_ns())
            .max()
            .unwrap_or(0)
    }

    /// Events on tracks in `group`, in emission order.
    pub fn events_in_group<'a>(&'a self, group: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events
            .iter()
            .filter(move |e| self.track(e.track).group == group)
    }

    fn intern(&mut self, group: &str, name: &str) -> TrackId {
        // Linear scan: the track table is small (streams + links + jobs)
        // and insertion order stays deterministic without hashing.
        if let Some(i) = self
            .tracks
            .iter()
            .position(|t| t.group == group && t.name == name)
        {
            return TrackId(i as u32);
        }
        self.tracks.push(Track {
            group: group.to_string(),
            name: name.to_string(),
        });
        TrackId((self.tracks.len() - 1) as u32)
    }
}

/// A cloneable recording handle. See the [module docs](self).
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<TraceData>>>,
}

// Manual impl so embedding a Recorder doesn't force the trace buffer into
// the Debug output of large structs like `FlowSim`.
impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// An **enabled** recorder with an empty buffer. Clones share it.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Some(Rc::new(RefCell::new(TraceData::default()))),
        }
    }

    /// A disabled recorder: every method is a no-op. Same as `default()`.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether events are being captured. Instrumentation sites should
    /// test this before building event names.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a track. Returns a dummy id on a disabled recorder (no
    /// event recorded through it will be stored either).
    pub fn track(&self, group: &str, name: &str) -> TrackId {
        match &self.inner {
            Some(inner) => inner.borrow_mut().intern(group, name),
            None => TrackId(u32::MAX),
        }
    }

    fn push(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().events.push(event);
        }
    }

    /// Record a closed duration span.
    pub fn span(&self, track: TrackId, name: &str, cat: &str, start_ns: u64, end_ns: u64) {
        self.span_args(track, name, cat, start_ns, end_ns, Vec::new());
    }

    /// Record a closed duration span with arguments.
    pub fn span_args(
        &self,
        track: TrackId,
        name: &str,
        cat: &str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(Event {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            kind: EventKind::Span { start_ns, end_ns },
            args,
        });
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, track: TrackId, name: &str, cat: &str, at_ns: u64) {
        self.instant_args(track, name, cat, at_ns, Vec::new());
    }

    /// Record a point-in-time marker with arguments.
    pub fn instant_args(
        &self,
        track: TrackId,
        name: &str,
        cat: &str,
        at_ns: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(Event {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            kind: EventKind::Instant { at_ns },
            args,
        });
    }

    /// Record one sample of the counter series `name`.
    pub fn counter(&self, track: TrackId, name: &str, at_ns: u64, value: f64) {
        if self.inner.is_none() {
            return;
        }
        self.push(Event {
            track,
            name: name.to_string(),
            cat: String::new(),
            kind: EventKind::Counter { at_ns, value },
            args: Vec::new(),
        });
    }

    /// Begin an async lifetime keyed by `(cat, id)`.
    pub fn async_begin(
        &self,
        track: TrackId,
        name: &str,
        cat: &str,
        id: u64,
        at_ns: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(Event {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            kind: EventKind::AsyncBegin { at_ns, id },
            args,
        });
    }

    /// Record a point event inside the async lifetime `(cat, id)`.
    pub fn async_instant(
        &self,
        track: TrackId,
        name: &str,
        cat: &str,
        id: u64,
        at_ns: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(Event {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            kind: EventKind::AsyncInstant { at_ns, id },
            args,
        });
    }

    /// End the async lifetime `(cat, id)`.
    pub fn async_end(&self, track: TrackId, name: &str, cat: &str, id: u64, at_ns: u64) {
        if self.inner.is_none() {
            return;
        }
        self.push(Event {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            kind: EventKind::AsyncEnd { at_ns, id },
            args: Vec::new(),
        });
    }

    /// A copy of everything recorded so far; `None` when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<TraceData> {
        self.inner.as_ref().map(|inner| inner.borrow().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let t = rec.track("g", "t");
        rec.span(t, "a", "c", 0, 10);
        rec.counter(t, "v", 5, 1.0);
        assert!(rec.snapshot().is_none());
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn clones_share_one_buffer() {
        let rec = Recorder::new();
        let clone = rec.clone();
        let t = clone.track(groups::GPU, "stream 0");
        clone.span(t, "sort", "Sort", 100, 200);
        rec.instant(t, "mark", "x", 150);
        let data = rec.snapshot().unwrap();
        assert_eq!(data.tracks.len(), 1);
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.end_ns(), 200);
        assert_eq!(data.track(data.events[0].track).name, "stream 0");
    }

    #[test]
    fn tracks_intern_by_group_and_name() {
        let rec = Recorder::new();
        let a = rec.track("g1", "t");
        let b = rec.track("g2", "t");
        let a2 = rec.track("g1", "t");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(rec.snapshot().unwrap().tracks.len(), 2);
    }

    #[test]
    fn event_kind_timestamps() {
        let span = EventKind::Span {
            start_ns: 3,
            end_ns: 9,
        };
        assert_eq!(span.start_ns(), 3);
        assert_eq!(span.end_ns(), 9);
        let inst = EventKind::Instant { at_ns: 7 };
        assert_eq!(inst.start_ns(), 7);
        assert_eq!(inst.end_ns(), 7);
    }
}
