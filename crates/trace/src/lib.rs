//! Cross-layer observability for the multi-GPU sorting simulator.
//!
//! The paper's findings are visibility findings — which link saturates,
//! which phase dominates, who contends with whom. This crate is the
//! instrument: a [`Recorder`] event bus that every layer feeds
//!
//! * `msort-sim`'s `FlowSim`: per-link utilization counters at each
//!   allocation epoch and per-flow lifecycle events
//!   (start / rate change / interrupt / complete);
//! * fault plans: instant fault/restore events;
//! * `msort-gpu`'s `GpuSystem`: per-stream op spans (its op timeline);
//! * `msort-serve`: per-job spans (queued → placed → executing →
//!   validated) tagged with tenant and gang
//!
//! and two exporters over the shared [`TraceData`]:
//!
//! * [`chrome_trace`] — one unified Chrome/Perfetto trace (a track group
//!   per GPU's streams, per link, per tenant);
//! * [`summarize`] / [`MetricsSummary`] — JSON/CSV aggregates (per-link
//!   mean/peak utilization, per-phase interconnect share, queue-wait vs
//!   service time).
//!
//! The recorder attaches through `msort_core::RunConfig`
//! (`.with_recorder(...)`), consumed uniformly by single-shot sorts, sort
//! drivers, the serve `SortService`, and the bench harness.
//!
//! **Overhead contract:** a disabled recorder (the default) costs one
//! branch per instrumentation site — no allocation, no event storage —
//! and recording is purely observational: enabling it never changes a
//! simulated clock value or an output byte.
//!
//! This crate is a leaf: timestamps are plain `u64` nanoseconds (the unit
//! of `msort_sim::SimTime`), so every layer can depend on it.

pub mod export;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use export::chrome_trace;
pub use json::{json_escape, json_valid};
pub use metrics::{summarize, LinkUtilization, MetricsSummary, PhaseMetrics};
pub use recorder::{groups, ArgValue, Event, EventKind, Recorder, TraceData, Track, TrackId};
