//! Chrome trace-event export of a [`TraceData`].
//!
//! The output loads in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! each track **group** becomes a process (named via `process_name`
//! metadata), each track a thread within it, so one file shows GPU
//! streams, link-utilization counters, fault instants, flow lifetimes,
//! and per-tenant job spans side by side. Timestamps are microseconds of
//! simulated time with nanosecond precision (three decimals).
//!
//! All strings pass through [`crate::json_escape`]; the output is always
//! valid RFC 8259 JSON (certified by [`crate::json_valid`] in the tests),
//! which the legacy per-`GpuSystem` `msort_gpu::chrome_trace` writer did
//! not guarantee.

use crate::json::json_escape;
use crate::recorder::{ArgValue, EventKind, TraceData};
use std::fmt::Write as _;

/// A finite JSON number for `v` (non-finite values clamp to 0, keeping
/// the output parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn write_args(out: &mut String, args: &[(String, ArgValue)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(", \"args\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": ", json_escape(k));
        match v {
            ArgValue::Str(s) => {
                let _ = write!(out, "\"{}\"", json_escape(s));
            }
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(f) => out.push_str(&json_f64(*f)),
        }
    }
    out.push('}');
}

/// Render a recording as one unified Chrome trace-event JSON document.
#[must_use]
pub fn chrome_trace(data: &TraceData) -> String {
    // Processes = track groups in first-use order; threads = tracks.
    let mut pids: Vec<&str> = Vec::new();
    for t in &data.tracks {
        if !pids.contains(&t.group.as_str()) {
            pids.push(&t.group);
        }
    }
    let pid_of = |group: &str| pids.iter().position(|g| *g == group).unwrap();

    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };

    for (pid, group) in pids.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}},\n  \
             {{\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"sort_index\": {pid}}}}}",
            json_escape(group),
        );
    }
    for (tid, t) in data.tracks.iter().enumerate() {
        sep(&mut out);
        let pid = pid_of(&t.group);
        let _ = write!(
            out,
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}},\n  \
             {{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"sort_index\": {tid}}}}}",
            json_escape(&t.name),
        );
    }

    for e in &data.events {
        let track = data.track(e.track);
        let pid = pid_of(&track.group);
        let tid = e.track.0;
        let name = json_escape(&e.name);
        let cat = json_escape(&e.cat);
        let ts = e.kind.start_ns() as f64 / 1e3;
        sep(&mut out);
        match e.kind {
            EventKind::Span { start_ns, end_ns } => {
                let dur = end_ns.saturating_sub(start_ns) as f64 / 1e3;
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"X\", \
                     \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": {pid}, \"tid\": {tid}"
                );
            }
            EventKind::Instant { .. } => {
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {ts:.3}, \"pid\": {pid}, \"tid\": {tid}"
                );
            }
            EventKind::Counter { value, .. } => {
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"ph\": \"C\", \"ts\": {ts:.3}, \
                     \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"value\": {}}}}}",
                    json_f64(value),
                );
                continue;
            }
            EventKind::AsyncBegin { id, .. }
            | EventKind::AsyncInstant { id, .. }
            | EventKind::AsyncEnd { id, .. } => {
                let ph = match e.kind {
                    EventKind::AsyncBegin { .. } => 'b',
                    EventKind::AsyncInstant { .. } => 'n',
                    _ => 'e',
                };
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"{ph}\", \
                     \"id\": {id}, \"ts\": {ts:.3}, \"pid\": {pid}, \"tid\": {tid}"
                );
            }
        }
        write_args(&mut out, &e.args);
        out.push('}');
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::json_valid;
    use crate::recorder::{groups, Recorder};

    fn sample() -> TraceData {
        let rec = Recorder::new();
        let s0 = rec.track(groups::GPU, "stream 0");
        let link = rec.track(groups::LINKS, "utilization");
        let flows = rec.track(groups::FLOWS, "flows");
        let t0 = rec.track(&groups::tenant(0), "job 0 (P2P sort)");
        rec.span(s0, "gpu sort", "sort", 1_000, 5_500);
        rec.span_args(
            t0,
            "job",
            "job",
            0,
            9_000,
            vec![
                ("tenant".into(), ArgValue::U64(0)),
                ("gang".into(), ArgValue::Str("0,1".into())),
                ("share".into(), ArgValue::F64(0.5)),
            ],
        );
        rec.counter(link, "GPU 0 ⇄ GPU 1", 2_000, 0.75);
        rec.instant(
            rec.track(groups::FAULTS, "fabric"),
            "link down",
            "fault",
            3_000,
        );
        rec.async_begin(flows, "flow", "flow", 7, 1_500, Vec::new());
        rec.async_instant(
            flows,
            "rate",
            "flow",
            7,
            2_000,
            vec![("gbps".into(), ArgValue::F64(25.0))],
        );
        rec.async_end(flows, "flow", "flow", 7, 4_000);
        rec.snapshot().unwrap()
    }

    #[test]
    fn exporter_emits_valid_json() {
        let json = chrome_trace(&sample());
        assert!(json_valid(&json), "invalid JSON:\n{json}");
        assert!(json_valid(&chrome_trace(&TraceData::default())));
    }

    #[test]
    fn exporter_covers_all_event_shapes_and_metadata() {
        let json = chrome_trace(&sample());
        for needle in [
            "\"ph\": \"X\"",
            "\"ph\": \"i\"",
            "\"ph\": \"C\"",
            "\"ph\": \"b\"",
            "\"ph\": \"n\"",
            "\"ph\": \"e\"",
            "\"ph\": \"M\"",
            "\"process_name\"",
            "\"thread_name\"",
            "gpu streams",
            "tenant0",
            "GPU 0 ⇄ GPU 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // ts/dur are microseconds: the 4500 ns span renders as 4.500.
        assert!(json.contains("\"dur\": 4.500"));
    }

    #[test]
    fn exporter_escapes_hostile_names() {
        let rec = Recorder::new();
        let t = rec.track("g\"roup\\", "tr\nack");
        rec.span_args(
            t,
            "na\"me",
            "c\\at",
            0,
            1,
            vec![("k\"ey".into(), ArgValue::Str("v\nal".into()))],
        );
        let json = chrome_trace(&rec.snapshot().unwrap());
        assert!(json_valid(&json), "invalid JSON:\n{json}");
        assert!(json.contains("na\\\"me"));
    }

    #[test]
    fn non_finite_counter_values_stay_parseable() {
        let rec = Recorder::new();
        let t = rec.track(groups::LINKS, "utilization");
        rec.counter(t, "x", 0, f64::NAN);
        rec.counter(t, "x", 1, f64::INFINITY);
        let json = chrome_trace(&rec.snapshot().unwrap());
        assert!(json_valid(&json), "invalid JSON:\n{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}
