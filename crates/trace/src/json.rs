//! Minimal JSON support: a string escaper for the exporters and a
//! recursive-descent recognizer of RFC 8259 JSON.
//!
//! The build is offline (no serde), so the exporters hand-write JSON and
//! the test suites certify it with [`json_valid`] — a recognizer that
//! accepts exactly one top-level value surrounded by whitespace. It was
//! born as a test helper in `msort-gpu`; the unified exporter promotes it
//! to a public utility so every crate's trace tests share one checker.

/// Escape `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes): `"` and `\` are backslash-escaped, control
/// characters become `\n`/`\r`/`\t` or `\u00XX`.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// `true` when `s` is exactly one valid RFC 8259 JSON value (plus
/// surrounding whitespace).
#[must_use]
pub fn json_valid(s: &str) -> bool {
    let b = s.as_bytes();
    match json_value(b, 0) {
        Some(i) => b[i..].iter().all(u8::is_ascii_whitespace),
        None => false,
    }
}

fn json_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn json_value(b: &[u8], i: usize) -> Option<usize> {
    let i = json_ws(b, i);
    match b.get(i)? {
        b'{' => json_seq(b, i, b'}', true),
        b'[' => json_seq(b, i, b']', false),
        b'"' => json_string(b, i),
        b't' => b[i..].starts_with(b"true").then_some(i + 4),
        b'f' => b[i..].starts_with(b"false").then_some(i + 5),
        b'n' => b[i..].starts_with(b"null").then_some(i + 4),
        _ => json_number(b, i),
    }
}

/// Object (`want_keys`) or array body after the opening bracket.
fn json_seq(b: &[u8], i: usize, close: u8, want_keys: bool) -> Option<usize> {
    let mut i = json_ws(b, i + 1);
    if b.get(i) == Some(&close) {
        return Some(i + 1);
    }
    loop {
        if want_keys {
            i = json_string(b, json_ws(b, i))?;
            i = json_ws(b, i);
            if b.get(i) != Some(&b':') {
                return None;
            }
            i += 1;
        }
        i = json_value(b, i)?;
        i = json_ws(b, i);
        match b.get(i)? {
            b',' => i += 1,
            c if *c == close => return Some(i + 1),
            _ => return None,
        }
    }
}

fn json_string(b: &[u8], i: usize) -> Option<usize> {
    if b.get(i) != Some(&b'"') {
        return None;
    }
    let mut i = i + 1;
    loop {
        match b.get(i)? {
            b'"' => return Some(i + 1),
            b'\\' => i += 2,
            c if *c < 0x20 => return None,
            _ => i += 1,
        }
    }
}

fn json_number(b: &[u8], mut i: usize) -> Option<usize> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |b: &[u8], mut i: usize| {
        let s = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        (i > s).then_some(i)
    };
    i = digits(b, i)?;
    if b.get(i) == Some(&b'.') {
        i = digits(b, i + 1)?;
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        i = digits(b, i)?;
    }
    (i > start).then_some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_checker_sanity() {
        assert!(json_valid("[]"));
        assert!(json_valid(r#"{"a": [1, -2.5e3, "x\"y", true, null]}"#));
        assert!(!json_valid("[1,]"));
        assert!(!json_valid("{\"a\" 1}"));
        assert!(!json_valid("[1] trailing"));
        assert!(!json_valid("{'a': 1}"));
        assert!(!json_valid(""));
        assert!(json_valid("  -3.5e-2  "));
    }

    #[test]
    fn escape_round_trips_through_the_recognizer() {
        for nasty in [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "new\nline and \t tab \r",
            "ctrl \u{1} \u{1f}",
            "unicode ⇄ ok",
            "",
        ] {
            let lit = format!("\"{}\"", json_escape(nasty));
            assert!(json_valid(&lit), "escaped literal invalid: {lit}");
        }
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
