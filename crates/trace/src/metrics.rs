//! Aggregate metrics computed from a recording: the numbers the paper's
//! figures are made of (which link saturates, which phase dominates, how
//! long jobs queue vs run), exported as JSON or CSV.

use crate::json::json_escape;
use crate::recorder::{groups, EventKind, TraceData};
use std::fmt::Write as _;

/// Time-weighted utilization of one link (from its counter series).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUtilization {
    /// Link name (the counter series name, e.g. `"GPU 0 ⇄ GPU 1"`).
    pub link: String,
    /// Time-weighted mean utilization over `[first sample, trace end]`,
    /// in `0.0..=1.0`.
    pub mean: f64,
    /// Peak sampled utilization.
    pub peak: f64,
}

/// Busy time attributed to one execution phase (from GPU op spans).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetrics {
    /// Phase label (the op span's `cat`: "HtoD", "sort", "merge", ...).
    pub phase: String,
    /// Summed op-span time in this phase across all streams.
    pub busy_ns: u64,
    /// The part of `busy_ns` spent in interconnect transfers (op spans
    /// whose name contains `"copy"`).
    pub interconnect_ns: u64,
}

impl PhaseMetrics {
    /// Fraction of this phase's busy time spent on the interconnect.
    #[must_use]
    pub fn interconnect_share(&self) -> f64 {
        if self.busy_ns == 0 {
            return 0.0;
        }
        self.interconnect_ns as f64 / self.busy_ns as f64
    }
}

/// The metrics summary of one recording.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSummary {
    /// Per-link utilization, in first-sample order.
    pub links: Vec<LinkUtilization>,
    /// Per-phase busy time, in first-span order.
    pub phases: Vec<PhaseMetrics>,
    /// Summed queue wait across jobs (serve-layer `"queued"` spans).
    pub queue_wait_ns: u64,
    /// Summed service time across jobs (serve-layer `"executing"` spans).
    pub service_ns: u64,
    /// Jobs observed (count of `"executing"` spans).
    pub jobs: u64,
}

/// Compute a [`MetricsSummary`] from a recording.
#[must_use]
pub fn summarize(data: &TraceData) -> MetricsSummary {
    let horizon = data.end_ns();
    let mut summary = MetricsSummary::default();

    // Link counters: step-function series per counter name.
    let mut series: Vec<(&str, Vec<(u64, f64)>)> = Vec::new();
    for e in data.events_in_group(groups::LINKS) {
        if let EventKind::Counter { at_ns, value } = e.kind {
            match series.iter_mut().find(|(n, _)| *n == e.name) {
                Some((_, samples)) => samples.push((at_ns, value)),
                None => series.push((&e.name, vec![(at_ns, value)])),
            }
        }
    }
    for (name, samples) in series {
        let peak = samples.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        let total = horizon.saturating_sub(samples[0].0);
        let mean = if total == 0 {
            samples.last().map_or(0.0, |&(_, v)| v)
        } else {
            let mut area = 0.0;
            for (i, &(t, v)) in samples.iter().enumerate() {
                let next = samples.get(i + 1).map_or(horizon, |&(t2, _)| t2);
                area += v * next.saturating_sub(t) as f64;
            }
            area / total as f64
        };
        summary.links.push(LinkUtilization {
            link: name.to_string(),
            mean,
            peak,
        });
    }

    // GPU op spans: busy + interconnect time per phase (the span's cat).
    for e in data.events_in_group(groups::GPU) {
        if let EventKind::Span { start_ns, end_ns } = e.kind {
            let dur = end_ns.saturating_sub(start_ns);
            let entry = match summary.phases.iter_mut().find(|p| p.phase == e.cat) {
                Some(p) => p,
                None => {
                    summary.phases.push(PhaseMetrics {
                        phase: e.cat.clone(),
                        busy_ns: 0,
                        interconnect_ns: 0,
                    });
                    summary.phases.last_mut().unwrap()
                }
            };
            entry.busy_ns += dur;
            if e.name.contains("copy") {
                entry.interconnect_ns += dur;
            }
        }
    }

    // Serve-layer job spans.
    for e in &data.events {
        if let EventKind::Span { start_ns, end_ns } = e.kind {
            let dur = end_ns.saturating_sub(start_ns);
            match e.name.as_str() {
                "queued" => summary.queue_wait_ns += dur,
                "executing" => {
                    summary.service_ns += dur;
                    summary.jobs += 1;
                }
                _ => {}
            }
        }
    }
    summary
}

impl MetricsSummary {
    /// The summary as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"links\": [");
        for (i, l) in self.links.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"link\": \"{}\", \"mean\": {:.6}, \"peak\": {:.6}}}",
                if i == 0 { "" } else { "," },
                json_escape(&l.link),
                l.mean,
                l.peak,
            );
        }
        out.push_str("\n  ],\n  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"phase\": \"{}\", \"busy_ns\": {}, \"interconnect_ns\": {}, \
                 \"interconnect_share\": {:.6}}}",
                if i == 0 { "" } else { "," },
                json_escape(&p.phase),
                p.busy_ns,
                p.interconnect_ns,
                p.interconnect_share(),
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"jobs\": {},\n  \"queue_wait_ns\": {},\n  \"service_ns\": {}\n}}\n",
            self.jobs, self.queue_wait_ns, self.service_ns,
        );
        out
    }

    /// The summary as CSV rows of `kind,name,a,b` (links: mean/peak;
    /// phases: `busy_ns`/`interconnect_ns`; service: totals).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,a,b\n");
        for l in &self.links {
            let _ = writeln!(
                out,
                "link,\"{}\",{:.6},{:.6}",
                l.link.replace('"', "\"\""),
                l.mean,
                l.peak,
            );
        }
        for p in &self.phases {
            let _ = writeln!(
                out,
                "phase,\"{}\",{},{}",
                p.phase.replace('"', "\"\""),
                p.busy_ns,
                p.interconnect_ns,
            );
        }
        let _ = writeln!(out, "service,queue_wait_ns,{},", self.queue_wait_ns);
        let _ = writeln!(out, "service,service_ns,{},", self.service_ns);
        let _ = writeln!(out, "service,jobs,{},", self.jobs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::json_valid;
    use crate::recorder::Recorder;

    #[test]
    fn link_utilization_is_time_weighted() {
        let rec = Recorder::new();
        let links = rec.track(groups::LINKS, "utilization");
        let gpu = rec.track(groups::GPU, "stream 0");
        // Utilization 1.0 for 100ns, then 0.0 for 300ns (horizon from the
        // GPU span below): mean 0.25, peak 1.0.
        rec.counter(links, "L0", 0, 1.0);
        rec.counter(links, "L0", 100, 0.0);
        rec.span(gpu, "HtoD copy", "HtoD", 0, 400);
        let s = summarize(&rec.snapshot().unwrap());
        assert_eq!(s.links.len(), 1);
        assert!((s.links[0].mean - 0.25).abs() < 1e-12, "{:?}", s.links[0]);
        assert!((s.links[0].peak - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_and_job_aggregation() {
        let rec = Recorder::new();
        let gpu = rec.track(groups::GPU, "stream 0");
        rec.span(gpu, "HtoD copy", "HtoD", 0, 100);
        rec.span(gpu, "gpu sort", "sort", 100, 400);
        rec.span(gpu, "P2P copy", "merge", 400, 500);
        rec.span(gpu, "local merge", "merge", 500, 800);
        let jobs = rec.track(&groups::tenant(1), "job 0 (P2P sort)");
        rec.span(jobs, "queued", "job", 0, 50);
        rec.span(jobs, "executing", "job", 50, 800);
        let s = summarize(&rec.snapshot().unwrap());
        let phase = |name: &str| s.phases.iter().find(|p| p.phase == name).unwrap();
        assert_eq!(phase("HtoD").busy_ns, 100);
        assert!((phase("HtoD").interconnect_share() - 1.0).abs() < 1e-12);
        assert_eq!(phase("sort").interconnect_ns, 0);
        assert_eq!(phase("merge").busy_ns, 400);
        assert!((phase("merge").interconnect_share() - 0.25).abs() < 1e-12);
        assert_eq!(s.queue_wait_ns, 50);
        assert_eq!(s.service_ns, 750);
        assert_eq!(s.jobs, 1);
        assert!(json_valid(&s.to_json()), "{}", s.to_json());
        assert!(s.to_csv().lines().count() >= 7);
    }

    #[test]
    fn empty_trace_summarizes_to_defaults() {
        let s = summarize(&TraceData::default());
        assert_eq!(s, MetricsSummary::default());
        assert!(json_valid(&s.to_json()));
    }
}
