//! Golden differential test: the event-queue engine ([`msort_sim::flows`])
//! against the original O(n)-rescan engine preserved in
//! [`msort_sim::reference`].
//!
//! Randomized staggered-flow schedules on all four platforms drive both
//! engines through identical action sequences — starts (including
//! zero-byte flows), full advances to the next completion, partial and
//! zero-length advances, and compactions — and after every step the test
//! demands **bit-identical** state: same `now()` (integer nanoseconds, so
//! `==` is bit equality), same completion events in the same order, and
//! per-flow rates equal down to the last mantissa bit
//! (`f64::to_bits`). Nothing is approximate: the optimized engine is only
//! correct if it is indistinguishable from the reference.

use msort_sim::flows::{FlowId, FlowSim};
use msort_sim::reference::{RefFlowId, ReferenceFlowSim};
use msort_sim::{SimDuration, SimTime};
use msort_topology::{Endpoint, Platform, Route};

/// splitmix64: tiny, seedable, and good enough to scramble action choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// All distinct routable endpoint pairs of a platform.
fn routable_pairs(p: &Platform) -> Vec<Route> {
    let mut endpoints = vec![Endpoint::HOST0];
    for s in 1..p.topology.cpu_count() {
        endpoints.push(Endpoint::HostMem { socket: s });
    }
    for g in 0..p.gpu_count() {
        endpoints.push(Endpoint::gpu(g));
    }
    let mut routes = Vec::new();
    for &a in &endpoints {
        for &b in &endpoints {
            if a == b {
                continue;
            }
            if let Some(r) = msort_topology::route::route(&p.topology, a, b) {
                routes.push(r);
            }
        }
    }
    routes
}

/// Both engines plus the bookkeeping that maps their ids onto shared
/// creation indices (the new engine's ids are stable; the reference
/// engine's shift on compaction).
struct Pair<'p> {
    new: FlowSim<'p>,
    reference: ReferenceFlowSim<'p>,
    /// Creation index → new-engine id.
    new_ids: Vec<FlowId>,
    /// Reference engine's flow-vec order, as creation indices.
    ref_order: Vec<usize>,
    /// Creation index → finished yet?
    done: Vec<bool>,
}

impl<'p> Pair<'p> {
    fn new(platform: &'p Platform) -> Self {
        Self {
            new: FlowSim::new(platform),
            reference: ReferenceFlowSim::new(platform),
            new_ids: Vec::new(),
            ref_order: Vec::new(),
            done: Vec::new(),
        }
    }

    fn start(&mut self, route: &Route, bytes: u64) {
        let creation = self.done.len();
        let id_new = self.new.start(route, bytes);
        let id_ref = self.reference.start(route, bytes);
        assert_eq!(id_ref.0, self.ref_order.len());
        self.new_ids.push(id_new);
        self.ref_order.push(creation);
        self.done.push(bytes == 0);
        self.check();
    }

    /// Next completion of both engines as (time, creation index).
    fn next_completion(&mut self) -> Option<(SimTime, usize)> {
        let a = self.new.next_completion();
        let b = self.reference.next_completion();
        match (a, b) {
            (None, None) => None,
            (Some((ta, ida)), Some((tb, idb))) => {
                assert_eq!(ta, tb, "completion times diverge");
                let ca = self
                    .new_ids
                    .iter()
                    .position(|&id| id == ida)
                    .expect("known id");
                let cb = self.ref_order[idb.0];
                assert_eq!(ca, cb, "completion flows diverge");
                Some((ta, ca))
            }
            (a, b) => panic!("one engine idle, the other not: {a:?} vs {b:?}"),
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        let fin_new = self.new.advance_to(t);
        let fin_ref = self.reference.advance_to(t);
        let creations_new: Vec<usize> = fin_new
            .iter()
            .map(|id| self.new_ids.iter().position(|n| n == id).expect("known id"))
            .collect();
        let creations_ref: Vec<usize> = fin_ref.iter().map(|id| self.ref_order[id.0]).collect();
        assert_eq!(creations_new, creations_ref, "finished sets diverge");
        for &c in &creations_new {
            self.done[c] = true;
        }
        self.check();
    }

    fn compact(&mut self) {
        self.new.compact();
        self.reference.compact();
        self.ref_order.retain(|&c| !self.done[c]);
        self.check();
    }

    /// Invariants that must hold after every step: identical clocks,
    /// identical active sets, and bit-identical rates for every live flow.
    fn check(&mut self) {
        assert_eq!(self.new.now(), self.reference.now());
        assert_eq!(self.new.active_count(), self.reference.active_count());
        for (pos, &c) in self.ref_order.iter().enumerate() {
            if self.done[c] {
                continue;
            }
            let r_new = self.new.rate(self.new_ids[c]);
            let r_ref = self.reference.rate(RefFlowId(pos));
            assert_eq!(
                r_new.to_bits(),
                r_ref.to_bits(),
                "rate of flow {c} diverges: {r_new} vs {r_ref}"
            );
            assert!(!self.new.is_done(self.new_ids[c]));
        }
    }
}

fn drive(platform: &Platform, seed: u64, steps: usize) {
    let routes = routable_pairs(platform);
    assert!(!routes.is_empty());
    let mut rng = Rng(seed);
    let mut pair = Pair::new(platform);
    for _ in 0..steps {
        match rng.below(10) {
            // Start a flow: mixed sizes, occasionally zero bytes.
            0..=3 => {
                let route = &routes[rng.below(routes.len() as u64) as usize];
                let bytes = match rng.below(8) {
                    0 => 0,
                    1 => 1 + rng.below(4096),
                    2..=4 => 1 + rng.below(1 << 20),
                    _ => 1 + rng.below(1 << 30),
                };
                pair.start(route, bytes);
            }
            // Advance exactly to the next completion.
            4..=6 => {
                if let Some((t, _)) = pair.next_completion() {
                    pair.advance_to(t);
                }
            }
            // Partial advance: halfway to the next completion.
            7 => {
                if let Some((t, _)) = pair.next_completion() {
                    let dt = t.since(pair.new.now());
                    let half = pair.new.now() + SimDuration(dt.0 / 2);
                    pair.advance_to(half);
                }
            }
            // Zero-length advance.
            8 => {
                let now = pair.new.now();
                pair.advance_to(now);
            }
            // Retire completed flows in both engines.
            _ => pair.compact(),
        }
    }
    // Drain event by event (not run_to_idle: every completion is compared).
    while let Some((t, _)) = pair.next_completion() {
        pair.advance_to(t);
    }
    assert_eq!(pair.new.now(), pair.reference.now());
    assert_eq!(pair.new.active_count(), 0);
}

#[test]
fn engines_agree_on_randomized_schedules() {
    let platforms = [
        Platform::test_pcie(2),
        Platform::ibm_ac922(),
        Platform::delta_d22x(),
        Platform::dgx_a100(),
    ];
    for (pi, p) in platforms.iter().enumerate() {
        for seed in 0..24u64 {
            drive(p, 0xD1F5_0000 + (pi as u64) * 1000 + seed, 40);
        }
    }
}

#[test]
fn engines_agree_on_long_staggered_schedule() {
    // One long schedule on the richest topology: keeps a deep active set
    // alive across many completions and compactions.
    let p = Platform::dgx_a100();
    drive(&p, 0xFEED_FACE, 400);
}
