//! Scheduled fault injection: link failures, degradations, and restores.
//!
//! A [`FaultPlan`] is a time-sorted list of [`FaultEvent`]s built before a
//! simulation runs (or generated from a seed by
//! [`FaultPlan::randomized`]). [`crate::FlowSim::schedule_faults`] installs
//! the plan; the engine then treats each fault time as an event: the clock
//! advances exactly to it, the link's [`LinkState`] changes, the
//! health-adjusted constraint table is rebuilt, in-flight flows over a
//! downed link are truncated and reported through
//! [`crate::FlowSim::take_interrupted`], and every surviving flow's rate is
//! re-allocated under the new capacities.
//!
//! An empty plan installs nothing: the engine's state and arithmetic remain
//! bit-identical to a fault-free build (the golden differential test pins
//! this down).

use crate::time::{SimDuration, SimTime};
use msort_topology::route::route_with;
use msort_topology::{Endpoint, LinkId, Platform};

/// One scheduled change to a link's health.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Link fails at `at`: in-flight flows over it are interrupted and
    /// routing skips it until a restore.
    LinkDown {
        /// Simulated time the fault fires.
        at: SimTime,
        /// The failing link.
        link: LinkId,
    },
    /// Link capacity drops to `factor` × calibrated at `at`. In-flight
    /// flows keep their route; their rates re-allocate under the reduced
    /// capacity. Degrading a downed link brings it back at reduced
    /// capacity.
    LinkDegrade {
        /// Simulated time the fault fires.
        at: SimTime,
        /// The degrading link.
        link: LinkId,
        /// Remaining capacity fraction, in `(0, 1)`.
        factor: f64,
    },
    /// Link returns to full calibrated capacity at `at`.
    LinkRestore {
        /// Simulated time the restore fires.
        at: SimTime,
        /// The recovering link.
        link: LinkId,
    },
}

impl FaultEvent {
    /// When the event fires.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::LinkDown { at, .. }
            | FaultEvent::LinkDegrade { at, .. }
            | FaultEvent::LinkRestore { at, .. } => at,
        }
    }

    /// The link the event targets.
    #[must_use]
    pub fn link(&self) -> LinkId {
        match *self {
            FaultEvent::LinkDown { link, .. }
            | FaultEvent::LinkDegrade { link, .. }
            | FaultEvent::LinkRestore { link, .. } => link,
        }
    }
}

/// A time-sorted schedule of fault events.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (scheduling it is a no-op).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by firing time (stable for equal times).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn push(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self.events.sort_by_key(FaultEvent::at);
        self
    }

    /// Schedule a link failure.
    #[must_use]
    pub fn link_down(self, at: SimTime, link: LinkId) -> Self {
        self.push(FaultEvent::LinkDown { at, link })
    }

    /// Schedule a capacity degradation to `factor` × calibrated.
    ///
    /// # Panics
    /// Panics unless `0 < factor < 1`.
    #[must_use]
    pub fn link_degrade(self, at: SimTime, link: LinkId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor < 1.0,
            "degradation factor must be in (0, 1), got {factor}"
        );
        self.push(FaultEvent::LinkDegrade { at, link, factor })
    }

    /// Schedule a restore to full capacity.
    #[must_use]
    pub fn link_restore(self, at: SimTime, link: LinkId) -> Self {
        self.push(FaultEvent::LinkRestore { at, link })
    }

    /// Generate a seeded random plan over `platform`'s links within
    /// `[0, horizon]`.
    ///
    /// Pure function of `(platform, seed, horizon)` — a failing chaos run
    /// is replayed exactly by re-running with the printed seed. Link
    /// *failures* are only scheduled when every endpoint pair remains
    /// reachable with the link (and all previously failed, conservatively
    /// never-restored links) removed, so the sort under test can always
    /// make progress; links whose removal would disconnect an endpoint are
    /// degraded instead.
    #[must_use]
    pub fn randomized(platform: &Platform, seed: u64, horizon: SimDuration) -> Self {
        let mut rng = SplitMix64::new(seed);
        let topo = &platform.topology;
        let n_links = topo.links().len();
        let n_events = 1 + (rng.next() % 4) as usize;
        // Fault times ascending so the down-set is tracked chronologically.
        let mut times: Vec<SimTime> = (0..n_events)
            .map(|_| SimTime(rng.next() % horizon.0.max(1)))
            .collect();
        times.sort_unstable();

        let mut plan = FaultPlan::new();
        let mut down = vec![false; n_links];
        for at in times {
            let link = LinkId((rng.next() % n_links as u64) as usize);
            let want_down = rng.next().is_multiple_of(3);
            if want_down && !down[link.0] && safe_to_kill(platform, &down, link) {
                down[link.0] = true;
                plan = plan.link_down(at, link);
                if rng.next().is_multiple_of(2) {
                    // Restore at a later random time (possibly past the
                    // horizon, i.e. effectively never). The link stays in
                    // the down-set for subsequent kill-safety checks:
                    // reachability never relies on a restore firing.
                    let back = SimTime(at.0 + 1 + rng.next() % horizon.0.max(1));
                    plan = plan.link_restore(back, link);
                }
            } else {
                // 5%..=95% of calibrated capacity.
                let factor = 0.05 + 0.9 * (rng.next() % 1024) as f64 / 1024.0;
                plan = plan.link_degrade(at, link, factor);
            }
        }
        plan
    }
}

/// `true` when removing `candidate` on top of the already-failed links
/// leaves every (host socket | GPU) endpoint pair routable.
fn safe_to_kill(platform: &Platform, down: &[bool], candidate: LinkId) -> bool {
    let topo = &platform.topology;
    let usable = |l: LinkId| !down[l.0] && l != candidate;
    let mut endpoints: Vec<Endpoint> = (0..topo.cpu_count())
        .map(|s| Endpoint::HostMem { socket: s })
        .collect();
    endpoints.extend((0..topo.gpu_count()).map(Endpoint::gpu));
    for (i, &a) in endpoints.iter().enumerate() {
        for &b in &endpoints[i + 1..] {
            if route_with(topo, a, b, usable).is_none() {
                return false;
            }
        }
    }
    true
}

/// The same tiny deterministic generator the differential test uses.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_by_time() {
        let plan = FaultPlan::new()
            .link_down(SimTime(300), LinkId(1))
            .link_degrade(SimTime(100), LinkId(0), 0.5)
            .link_restore(SimTime(200), LinkId(1));
        let ats: Vec<u64> = plan.events().iter().map(|e| e.at().0).collect();
        assert_eq!(ats, vec![100, 200, 300]);
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn degrade_factor_must_be_fractional() {
        let _ = FaultPlan::new().link_degrade(SimTime(0), LinkId(0), 1.5);
    }

    #[test]
    fn randomized_is_deterministic() {
        let p = Platform::delta_d22x();
        let h = SimDuration::from_millis(100);
        let a = FaultPlan::randomized(&p, 42, h);
        let b = FaultPlan::randomized(&p, 42, h);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::randomized(&p, 43, h);
        // Different seeds essentially never agree event-for-event.
        assert!(a.events() != c.events() || a.events().len() != c.events().len());
    }

    #[test]
    fn randomized_never_disconnects_endpoints() {
        for seed in 0..64 {
            for p in [
                Platform::ibm_ac922(),
                Platform::delta_d22x(),
                Platform::dgx_a100(),
                Platform::test_pcie(2),
            ] {
                let plan = FaultPlan::randomized(&p, seed, SimDuration::from_millis(50));
                let mut down = vec![false; p.topology.links().len()];
                for ev in plan.events() {
                    if let FaultEvent::LinkDown { link, .. } = ev {
                        assert!(
                            safe_to_kill(&p, &down, *link),
                            "seed {seed} on {} kills an unsafe link",
                            p.topology.node(p.topology.link(*link).a).name
                        );
                        down[link.0] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn test_pcie_plans_never_kill() {
        // Every test_pcie link is a lone host uplink: killing any of them
        // disconnects a GPU, so randomized plans must only degrade there.
        for seed in 0..32 {
            let p = Platform::test_pcie(2);
            let plan = FaultPlan::randomized(&p, seed, SimDuration::from_millis(10));
            assert!(
                plan.events()
                    .iter()
                    .all(|e| !matches!(e, FaultEvent::LinkDown { .. })),
                "seed {seed}"
            );
        }
    }
}
