//! Reference fluid engine: the original O(n)-rescan implementation,
//! preserved verbatim.
//!
//! The optimized engine in [`crate::flows`] (slab storage, completion heap,
//! incremental allocation) must produce **bit-identical** completion times
//! to this one. This module keeps the original engine — including its own
//! private copy of the progressive-filling allocator loop, so the two
//! engines share no allocation code — as the golden model for the
//! differential test in `tests/differential.rs` and as the baseline for the
//! before/after benchmarks in `crates/bench/benches/flow_allocator.rs`.
//!
//! Known costs this implementation pays per event (the reason it was
//! replaced): it clones every active flow's `FlowRequest` into a fresh
//! `Vec` on each re-allocation, rescans *all* flows ever started (completed
//! ones included) to find the next completion, and never reuses retired
//! flow slots.

use crate::time::{SimDuration, SimTime};
use msort_topology::{ConstraintTable, FlowRequest, Platform, Route};

/// Handle to a flow in the reference engine. Plain index: invalidated by
/// [`ReferenceFlowSim::compact`], exactly like the original. The index is
/// public so the differential test can re-derive ids after a compaction
/// shifts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefFlowId(pub usize);

#[derive(Debug)]
struct ActiveFlow {
    request: FlowRequest,
    remaining: f64,
    rate: f64,
    done: bool,
}

/// The original fluid transfer simulator (see module docs).
#[derive(Debug)]
pub struct ReferenceFlowSim<'p> {
    platform: &'p Platform,
    flows: Vec<ActiveFlow>,
    now: SimTime,
}

impl<'p> ReferenceFlowSim<'p> {
    /// Create an idle simulator at `t = 0`.
    #[must_use]
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            flows: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Start a transfer of `bytes` along `route` at the current time.
    pub fn start(&mut self, route: &Route, bytes: u64) -> RefFlowId {
        self.start_request(self.platform.flow_request(route), bytes)
    }

    /// Start a transfer from an explicit allocator request.
    pub fn start_request(&mut self, request: FlowRequest, bytes: u64) -> RefFlowId {
        let id = RefFlowId(self.flows.len());
        self.flows.push(ActiveFlow {
            request,
            remaining: bytes as f64,
            rate: 0.0,
            done: bytes == 0,
        });
        self.reallocate();
        id
    }

    /// `true` once the flow has delivered all its bytes.
    #[must_use]
    pub fn is_done(&self, id: RefFlowId) -> bool {
        self.flows[id.0].done
    }

    /// Current rate (bytes/s) of a flow; zero once completed.
    #[must_use]
    pub fn rate(&self, id: RefFlowId) -> f64 {
        if self.flows[id.0].done {
            0.0
        } else {
            self.flows[id.0].rate
        }
    }

    /// Number of currently active (unfinished) flows.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.flows.iter().filter(|f| !f.done).count()
    }

    /// Earliest upcoming flow completion `(time, flow)`, if any flow is
    /// active. O(n) rescan over every flow ever started.
    #[must_use]
    pub fn next_completion(&self) -> Option<(SimTime, RefFlowId)> {
        let mut best: Option<(SimTime, RefFlowId)> = None;
        for (i, f) in self.flows.iter().enumerate() {
            if f.done {
                continue;
            }
            assert!(
                f.rate > 0.0,
                "active flow {i} has zero rate: the allocator starved it"
            );
            let eta = self.now + SimDuration::for_bytes_at(f.remaining.ceil() as u64, f.rate);
            if best.is_none_or(|(t, _)| eta < t) {
                best = Some((eta, RefFlowId(i)));
            }
        }
        best
    }

    /// Advance the clock to `t`, progressing all active flows linearly and
    /// retiring the ones that finish. Returns the retired flow ids.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<RefFlowId> {
        let dt = t.since(self.now).as_secs_f64();
        self.now = t;
        let mut finished = Vec::new();
        for (i, f) in self.flows.iter_mut().enumerate() {
            if f.done {
                continue;
            }
            f.remaining -= f.rate * dt;
            // Sub-nanosecond residue is a completed flow: rates are exact
            // between events, but `for_bytes_at` rounds up to whole ns.
            if f.remaining <= f.rate * 1e-9 + 1e-6 {
                f.remaining = 0.0;
                f.done = true;
                finished.push(RefFlowId(i));
            }
        }
        if !finished.is_empty() {
            self.reallocate();
        }
        finished
    }

    /// Run until every flow completes; returns the final time.
    pub fn run_to_idle(&mut self) -> SimTime {
        while let Some((t, _)) = self.next_completion() {
            self.advance_to(t);
        }
        self.now
    }

    /// Drop all completed flows' bookkeeping (ids of retired flows become
    /// invalid — this is the hazard the optimized engine's generation
    /// counters close).
    pub fn compact(&mut self) {
        self.flows.retain(|f| !f.done);
        // Indices shifted: only valid when no external ids are held.
        self.reallocate();
    }

    fn reallocate(&mut self) {
        let active: Vec<usize> = (0..self.flows.len())
            .filter(|&i| !self.flows[i].done)
            .collect();
        let requests: Vec<FlowRequest> = active
            .iter()
            .map(|&i| self.flows[i].request.clone())
            .collect();
        let rates = reference_allocate_rates(self.platform.constraint_table(), &requests);
        for (&i, &rate) in active.iter().zip(rates.iter()) {
            assert!(
                rate.is_finite(),
                "flow {i} is unconstrained; give intra-device copies a rate cap"
            );
            self.flows[i].rate = rate;
        }
    }
}

/// The original free-function allocator loop, fresh scratch vectors and
/// all. Kept private to this module so the differential test pits two fully
/// independent implementations against each other.
fn reference_allocate_rates(table: &ConstraintTable, flows: &[FlowRequest]) -> Vec<f64> {
    let mut rates = vec![0.0f64; flows.len()];
    if flows.is_empty() {
        return rates;
    }

    let mut remaining: Vec<f64> = table.constraints().iter().map(|c| c.capacity).collect();
    let mut frozen = vec![false; flows.len()];

    loop {
        // Total unfrozen weight per constraint.
        let mut weight = vec![0.0f64; remaining.len()];
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            for &(c, w) in &flow.constraints {
                weight[c.0] += w;
            }
        }

        // The uniform rate increment every unfrozen flow can still take.
        let mut delta = f64::INFINITY;
        for (&rem, &w) in remaining.iter().zip(weight.iter()) {
            if w > 0.0 {
                delta = delta.min(rem / w);
            }
        }
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            if let Some(cap) = flow.rate_cap {
                delta = delta.min(cap - rates[f]);
            }
        }
        if !delta.is_finite() {
            // Remaining flows are unconstrained.
            for (f, rate) in rates.iter_mut().enumerate() {
                if !frozen[f] {
                    *rate = f64::INFINITY;
                }
            }
            break;
        }
        let delta = delta.max(0.0);

        // Apply the increment and its consumption.
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            rates[f] += delta;
            for &(c, w) in &flow.constraints {
                remaining[c.0] = (remaining[c.0] - delta * w).max(0.0);
            }
        }

        // Freeze flows at their cap or on a saturated constraint.
        let mut progressed = false;
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let capped = flow
                .rate_cap
                .is_some_and(|cap| rates[f] >= cap - f64::EPSILON * cap.abs());
            let saturated = flow.constraints.iter().any(|&(c, w)| {
                w > 0.0 && remaining[c.0] <= reference_saturation_epsilon(table.capacity(c))
            });
            if capped || saturated {
                frozen[f] = true;
                progressed = true;
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
        if !progressed {
            // Numerical corner: nothing froze but delta was ~0. Freeze all
            // remaining flows to terminate; their rates are already max-min.
            for f in frozen.iter_mut() {
                *f = true;
            }
            break;
        }
    }
    rates
}

/// Tolerance for deciding a constraint is saturated, relative to its size.
fn reference_saturation_epsilon(capacity: f64) -> f64 {
    (capacity * 1e-9).max(1e-6)
}
