//! Simulated time: integer nanoseconds.
//!
//! Using an integer clock (rather than `f64` seconds) keeps event ordering
//! exact and the whole simulation bit-for-bit deterministic across runs and
//! platforms, which the test suite relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulated clock (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since the epoch as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be after `self`"),
        )
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from float seconds (saturating at zero; rounds to ns).
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// The span in float seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in float milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration to move `bytes` at `rate` bytes/s (rounds up to whole ns so
    /// a transfer never completes early).
    #[must_use]
    pub fn for_bytes_at(bytes: u64, rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        SimDuration(((bytes as f64 / rate) * 1e9).ceil() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.0, 5_000_000);
        assert_eq!((t - SimTime::ZERO).as_millis_f64(), 5.0);
        let mut t2 = t;
        t2 += SimDuration::from_micros(1);
        assert_eq!(t2.0, 5_001_000);
    }

    #[test]
    fn bytes_at_rate_rounds_up() {
        // 1 GB at 3 GB/s = 0.333...s: must round up.
        let d = SimDuration::for_bytes_at(1_000_000_000, 3e9);
        assert!(d.as_secs_f64() >= 1.0 / 3.0);
        assert!(d.as_secs_f64() < 1.0 / 3.0 + 1e-6);
    }

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.0, 1_250_000_000);
        assert_eq!(d.as_secs_f64(), 1.25);
        assert_eq!(format!("{d}"), "1.250s");
        assert_eq!(format!("{}", SimDuration::from_millis(36)), "36.00ms");
        assert_eq!(format!("{}", SimDuration::from_micros(62)), "62.0us");
    }

    #[test]
    #[should_panic(expected = "must not be after")]
    fn negative_span_panics() {
        let _ = SimTime(5).since(SimTime(6));
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }
}
