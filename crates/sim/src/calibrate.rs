//! Kernel and CPU cost models.
//!
//! Every compute duration in the simulation comes from here. The constants
//! are anchored to the paper's own measurements; EXPERIMENTS.md records the
//! resulting paper-vs-simulated deltas for every figure.
//!
//! Anchors used:
//!
//! * **Table 2** (A100, 1 B uniform u32): Thrust 36 ms, CUB 36 ms, Stehle
//!   MSB radix 57 ms, MGPU merge sort 200 ms. Radix sorts scale linearly in
//!   bytes; merge sort carries the `log2(n)` factor.
//! * **Section 6.1.4 / 6.3**: the A100 sorts "almost twice as fast" as the
//!   V100 (factor 1.9); on the V100 32-bit keys take 83–88% of the 64-bit
//!   time for equal total bytes (factor ≈ 1.17 per byte for 64-bit); on the
//!   A100 the two widths are within 95% (factor 1.05).
//! * **Section 5.2**: device-local copies are ~3× NVLink 3.0 / ~5× three
//!   NVLink 2.0 bricks (via [`GpuModel::dtod_bandwidth`]); Thrust's pairwise
//!   merge beats MGPU's by 1.7×.
//! * **Figures 12–14 phase breakdowns**: CPU multiway merge effective
//!   stream bandwidths — AC922 ≈ 100 GB/s (the paper's 46%-of-0.35 s merge
//!   bar for 8 GB), +8% from 2 to 4 chunks; DELTA ≈ 66 GB/s; DGX ≈ 88 GB/s,
//!   flat in the chunk count.
//! * **Figure 1 / Figure 15b**: PARADIS sorts 4 B keys in 2.25 s on the DGX
//!   (1.78 G keys/s); the paper's 14×/9× speedup headlines pin the AC922
//!   at ≈ 0.60 G keys/s and the DELTA at ≈ 0.345 G keys/s.
//! * **Section 5.2**: pivot selection is `O(log n)` P2P reads and costs
//!   0.03% of the total sort; modeled as `log2(n)` round-trips of 2.5 µs.
//! * **Section 5.1**: allocating GPU memory costs ~150 ms per 8 GB on the
//!   AC922 — charged by the virtual runtime on explicit allocations (the
//!   experiments pre-allocate, exactly like the paper).

use crate::time::SimDuration;
use msort_data::DataType;
use msort_topology::{GpuModel, Platform, PlatformId};

/// The single-GPU sorting primitives re-evaluated in the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuSortAlgo {
    /// `thrust::sort` (LSB radix with decoupled-lookback scan, ≥ 1.11.0).
    ThrustLike,
    /// CUB radix sort — identical performance to Thrust since they share
    /// the same underlying implementation.
    CubLike,
    /// Stehle & Jacobsen's MSB radix sort.
    StehleLike,
    /// ModernGPU merge sort.
    MgpuLike,
}

impl GpuSortAlgo {
    /// Display name (Table 2 rows).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GpuSortAlgo::ThrustLike => "Thrust",
            GpuSortAlgo::CubLike => "CUB",
            GpuSortAlgo::StehleLike => "Stehle",
            GpuSortAlgo::MgpuLike => "MGPU",
        }
    }

    /// All four, in Table 2 order.
    #[must_use]
    pub const fn all() -> [GpuSortAlgo; 4] {
        [
            GpuSortAlgo::ThrustLike,
            GpuSortAlgo::CubLike,
            GpuSortAlgo::StehleLike,
            GpuSortAlgo::MgpuLike,
        ]
    }

    /// Effective sort throughput on the A100 for 32-bit keys, bytes/s
    /// (Table 2 anchors; the merge sort value is at the 1 B-key reference
    /// point and is rescaled by `log2 n` elsewhere).
    fn a100_bytes_per_sec(self) -> f64 {
        match self {
            GpuSortAlgo::ThrustLike | GpuSortAlgo::CubLike => 4e9 / 36e-3,
            GpuSortAlgo::StehleLike => 4e9 / 57e-3,
            GpuSortAlgo::MgpuLike => 4e9 / 200e-3,
        }
    }
}

/// Per-platform CPU-side constants.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// Effective multiway-merge stream bandwidth: merging `b` output bytes
    /// costs `2 b / merge_bw` (read everything + write everything).
    pub merge_bw: f64,
    /// Relative merge slowdown per doubling of the sublist count beyond 2
    /// (AC922 measures +8% from two to four chunks; the DGX is flat).
    pub merge_k_growth: f64,
    /// PARADIS throughput in 32-bit keys per second.
    pub paradis_keys_per_sec: f64,
}

/// The complete cost model for one platform.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// CPU-side constants.
    pub cpu: CpuCosts,
    /// Slowdown of the V100 relative to the A100 for GPU kernels.
    pub v100_factor: f64,
    /// Per-byte slowdown of 64-bit keys on the A100 (≈ 1.05).
    pub wide_key_factor_a100: f64,
    /// Per-byte slowdown of 64-bit keys on the V100 (≈ 1.17).
    pub wide_key_factor_v100: f64,
    /// Effective bandwidth of Thrust's pairwise GPU merge on the A100
    /// (bytes/s over `2 × merged bytes`); V100 scales by `v100_factor`.
    pub gpu_merge_bw_a100: f64,
    /// MGPU's pairwise merge is this factor slower than Thrust's (§5.2).
    pub mgpu_merge_penalty: f64,
    /// Latency of one pivot-selection binary-search step (a remote P2P
    /// read round-trip).
    pub pivot_step: SimDuration,
    /// GPU memory allocation cost per byte (the paper's 150 ms / 8 GB).
    pub alloc_secs_per_byte: f64,
}

impl CostModel {
    /// The cost model for one of the paper's platforms (or sane defaults
    /// for custom ones).
    #[must_use]
    pub fn for_platform(platform: &Platform) -> Self {
        Self::for_platform_id(platform.id)
    }

    /// Cost model by platform id.
    #[must_use]
    pub fn for_platform_id(id: PlatformId) -> Self {
        let cpu = match id {
            PlatformId::IbmAc922 => CpuCosts {
                merge_bw: 100e9,
                merge_k_growth: 0.08,
                paradis_keys_per_sec: 0.60e9,
            },
            PlatformId::DeltaD22x => CpuCosts {
                merge_bw: 66e9,
                merge_k_growth: 0.08,
                paradis_keys_per_sec: 0.345e9,
            },
            PlatformId::DgxA100 => CpuCosts {
                merge_bw: 88e9,
                merge_k_growth: 0.0,
                paradis_keys_per_sec: 1.78e9,
            },
            PlatformId::Custom => CpuCosts {
                merge_bw: 80e9,
                merge_k_growth: 0.05,
                paradis_keys_per_sec: 1.0e9,
            },
        };
        Self {
            cpu,
            v100_factor: 1.9,
            wide_key_factor_a100: 1.05,
            wide_key_factor_v100: 1.17,
            gpu_merge_bw_a100: 600e9,
            mgpu_merge_penalty: 1.7,
            pivot_step: SimDuration(2_500),
            alloc_secs_per_byte: 0.150 / (8.0 * (1u64 << 30) as f64),
        }
    }

    /// Duration for a GPU to sort `n` keys of `dt` with `algo`.
    #[must_use]
    pub fn gpu_sort(&self, gpu: GpuModel, algo: GpuSortAlgo, dt: DataType, n: u64) -> SimDuration {
        if n <= 1 {
            return SimDuration::from_micros(5);
        }
        let bytes = n as f64 * dt.key_bytes() as f64;
        let mut secs = bytes / algo.a100_bytes_per_sec();
        if algo == GpuSortAlgo::MgpuLike {
            // Comparison sort: O(n log n) memory traffic; Table 2's anchor
            // is at n = 1e9 (log2 ≈ 30).
            secs *= ((n as f64).log2() / 30.0).max(0.1);
        }
        secs *= self.gpu_factor(gpu);
        if dt.key_bytes() >= 8 {
            // 64-bit keys and key-value pairs move wide elements; Section
            // 6.3's width factors apply per byte.
            secs *= self.wide_key_factor(gpu);
        }
        SimDuration::from_secs_f64(secs)
    }

    /// Duration of a Thrust-style pairwise merge of `bytes` total on `gpu`.
    #[must_use]
    pub fn gpu_merge(&self, gpu: GpuModel, bytes: u64) -> SimDuration {
        let secs = 2.0 * bytes as f64 / (self.gpu_merge_bw_a100 / self.gpu_factor(gpu));
        SimDuration::from_secs_f64(secs)
    }

    /// Duration of a splitter bucket partition of `bytes` on `gpu` (sample
    /// sort's local scatter). One histogram pass plus one scatter pass over
    /// the data — the same 2x-bytes memory traffic as a pairwise merge, so
    /// it shares the merge bandwidth calibration.
    #[must_use]
    pub fn gpu_partition(&self, gpu: GpuModel, bytes: u64) -> SimDuration {
        self.gpu_merge(gpu, bytes)
    }

    /// Duration of an MGPU-style pairwise merge (the slower primitive the
    /// paper compares against in Section 5.2).
    #[must_use]
    pub fn gpu_merge_mgpu(&self, gpu: GpuModel, bytes: u64) -> SimDuration {
        let base = self.gpu_merge(gpu, bytes);
        SimDuration::from_secs_f64(base.as_secs_f64() * self.mgpu_merge_penalty)
    }

    /// Duration of a device-local (DtoD) copy of `bytes` on `gpu`.
    #[must_use]
    pub fn dtod_copy(&self, gpu: GpuModel, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / gpu.dtod_bandwidth())
    }

    /// Effective rate (bytes/s) of the CPU multiway merge of `k` sublists,
    /// expressed over *output* bytes. The merge itself moves `2 ×` that, so
    /// the returned value is `merge_bw / 2` adjusted for `k`.
    #[must_use]
    pub fn cpu_merge_rate(&self, k: usize) -> f64 {
        let k_factor = if k > 2 {
            1.0 + self.cpu.merge_k_growth * ((k as f64).log2() - 1.0)
        } else {
            1.0
        };
        self.cpu.merge_bw / 2.0 / k_factor
    }

    /// Duration of the CPU multiway merge producing `bytes` of output from
    /// `k` sublists (no transfer contention; the virtual runtime models the
    /// contending variant as a host-memory flow at this rate).
    #[must_use]
    pub fn cpu_multiway_merge(&self, bytes: u64, k: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cpu_merge_rate(k))
    }

    /// Slowdown of a multiway merge whose input sublists have unequal
    /// sizes. The paper measures the eager-merging final merge — one huge
    /// eagerly merged run next to the last group's small chunks — to take
    /// 48% (DGX) to 70% (AC922) longer than a merge of equal sublists
    /// (Section 6.2): the parallel merge's work partitioning degrades when
    /// one run dominates. `1.0` for balanced inputs; grows with
    /// `k·max/total`, hitting ≈1.49 for the paper's DGX case.
    #[must_use]
    pub fn merge_imbalance_factor(&self, input_lens: &[u64]) -> f64 {
        let k = input_lens.len();
        if k < 2 {
            return 1.0;
        }
        let total: u64 = input_lens.iter().sum();
        let max = input_lens.iter().copied().max().unwrap_or(0);
        if total == 0 {
            return 1.0;
        }
        let dominance = k as f64 * max as f64 / total as f64;
        1.0 + (dominance - 1.0) / (k as f64 - 1.0)
    }

    /// Duration of PARADIS sorting `n` keys of type `dt` on this CPU.
    #[must_use]
    pub fn cpu_paradis(&self, dt: DataType, n: u64) -> SimDuration {
        // PARADIS is memory-bound: model constant bytes/s, i.e. 64-bit keys
        // sort at half the key rate.
        let keys_per_sec = self.cpu.paradis_keys_per_sec * 4.0 / dt.key_bytes() as f64;
        SimDuration::from_secs_f64(n as f64 / keys_per_sec)
    }

    /// Duration of one pivot selection over chunks of `chunk_len` keys.
    #[must_use]
    pub fn pivot_selection(&self, chunk_len: u64) -> SimDuration {
        let steps = (chunk_len.max(2) as f64).log2().ceil() as u64 + 1;
        SimDuration(self.pivot_step.0 * steps)
    }

    /// Duration of allocating `bytes` of device memory.
    #[must_use]
    pub fn gpu_alloc(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * self.alloc_secs_per_byte)
    }

    fn gpu_factor(&self, gpu: GpuModel) -> f64 {
        match gpu {
            GpuModel::A100 => 1.0,
            GpuModel::V100 => self.v100_factor,
            GpuModel::Custom => self.v100_factor,
        }
    }

    fn wide_key_factor(&self, gpu: GpuModel) -> f64 {
        match gpu {
            GpuModel::A100 => self.wide_key_factor_a100,
            GpuModel::V100 | GpuModel::Custom => self.wide_key_factor_v100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgx_model() -> CostModel {
        CostModel::for_platform_id(PlatformId::DgxA100)
    }

    #[test]
    fn table2_anchors_reproduce() {
        let m = dgx_model();
        let n = 1_000_000_000;
        let thrust = m.gpu_sort(GpuModel::A100, GpuSortAlgo::ThrustLike, DataType::U32, n);
        let cub = m.gpu_sort(GpuModel::A100, GpuSortAlgo::CubLike, DataType::U32, n);
        let stehle = m.gpu_sort(GpuModel::A100, GpuSortAlgo::StehleLike, DataType::U32, n);
        let mgpu = m.gpu_sort(GpuModel::A100, GpuSortAlgo::MgpuLike, DataType::U32, n);
        assert!((thrust.as_millis_f64() - 36.0).abs() < 0.5, "{thrust}");
        assert_eq!(thrust, cub);
        assert!((stehle.as_millis_f64() - 57.0).abs() < 1.0, "{stehle}");
        assert!((mgpu.as_millis_f64() - 200.0).abs() < 2.0, "{mgpu}");
    }

    #[test]
    fn table2_ratios_hold() {
        // Thrust beats Stehle 1.6x and MGPU 5.5x (paper Section 5.1).
        let m = dgx_model();
        let n = 1_000_000_000;
        let t = m
            .gpu_sort(GpuModel::A100, GpuSortAlgo::ThrustLike, DataType::U32, n)
            .as_secs_f64();
        let s = m
            .gpu_sort(GpuModel::A100, GpuSortAlgo::StehleLike, DataType::U32, n)
            .as_secs_f64();
        let g = m
            .gpu_sort(GpuModel::A100, GpuSortAlgo::MgpuLike, DataType::U32, n)
            .as_secs_f64();
        assert!((s / t - 1.6).abs() < 0.1);
        assert!((g / t - 5.5).abs() < 0.2);
    }

    #[test]
    fn v100_is_about_half_as_fast() {
        let m = dgx_model();
        let n = 500_000_000;
        let a = m
            .gpu_sort(GpuModel::A100, GpuSortAlgo::ThrustLike, DataType::U32, n)
            .as_secs_f64();
        let v = m
            .gpu_sort(GpuModel::V100, GpuSortAlgo::ThrustLike, DataType::U32, n)
            .as_secs_f64();
        assert!((v / a - 1.9).abs() < 0.05);
    }

    #[test]
    fn data_type_factors_match_section_6_3() {
        let m = dgx_model();
        // Equal total bytes: 4B u32 vs 2B u64.
        let a32 = m
            .gpu_sort(
                GpuModel::A100,
                GpuSortAlgo::ThrustLike,
                DataType::U32,
                4_000_000_000,
            )
            .as_secs_f64();
        let a64 = m
            .gpu_sort(
                GpuModel::A100,
                GpuSortAlgo::ThrustLike,
                DataType::U64,
                2_000_000_000,
            )
            .as_secs_f64();
        assert!(a32 / a64 > 0.94 && a32 / a64 <= 1.0, "{}", a32 / a64);
        let v32 = m
            .gpu_sort(
                GpuModel::V100,
                GpuSortAlgo::ThrustLike,
                DataType::F32,
                2_000_000_000,
            )
            .as_secs_f64();
        let v64 = m
            .gpu_sort(
                GpuModel::V100,
                GpuSortAlgo::ThrustLike,
                DataType::F64,
                1_000_000_000,
            )
            .as_secs_f64();
        let ratio = v32 / v64;
        assert!((0.83..=0.88).contains(&ratio), "{ratio}");
    }

    #[test]
    fn paradis_anchor_fig1() {
        let m = dgx_model();
        let d = m.cpu_paradis(DataType::U32, 4_000_000_000);
        assert!((d.as_secs_f64() - 2.25).abs() < 0.03, "{d}");
    }

    #[test]
    fn ac922_merge_anchor_fig12() {
        // Merging 8 GB from two chunks: the paper's breakdown shows ~0.16 s.
        let m = CostModel::for_platform_id(PlatformId::IbmAc922);
        let d = m.cpu_multiway_merge(8 * (1u64 << 30), 2);
        assert!((d.as_secs_f64() - 0.17).abs() < 0.02, "{d}");
        // +8% for four chunks.
        let d4 = m.cpu_multiway_merge(8 * (1u64 << 30), 4);
        let growth = d4.as_secs_f64() / d.as_secs_f64();
        assert!((growth - 1.08).abs() < 0.01, "{growth}");
    }

    #[test]
    fn dgx_merge_flat_in_k() {
        let m = dgx_model();
        let d2 = m.cpu_multiway_merge(1 << 33, 2);
        let d8 = m.cpu_multiway_merge(1 << 33, 8);
        assert_eq!(d2, d8);
    }

    #[test]
    fn pivot_selection_is_negligible() {
        let m = dgx_model();
        let d = m.pivot_selection(500_000_000);
        assert!(d.as_secs_f64() < 1e-3, "{d}");
        assert!(d > SimDuration::ZERO);
    }

    #[test]
    fn alloc_anchor() {
        let m = CostModel::for_platform_id(PlatformId::IbmAc922);
        let d = m.gpu_alloc(8 * (1u64 << 30));
        assert!((d.as_secs_f64() - 0.150).abs() < 1e-6);
    }

    #[test]
    fn gpu_merge_faster_than_interconnects() {
        let m = dgx_model();
        // Merging 8 GB on an A100 must be far below 0.1 s.
        let d = m.gpu_merge(GpuModel::A100, 8 * (1u64 << 30));
        assert!(d.as_secs_f64() < 0.05, "{d}");
        let mg = m.gpu_merge_mgpu(GpuModel::A100, 8 * (1u64 << 30));
        assert!((mg.as_secs_f64() / d.as_secs_f64() - 1.7).abs() < 0.01);
    }

    #[test]
    fn tiny_sorts_have_floor_latency() {
        let m = dgx_model();
        let d = m.gpu_sort(GpuModel::A100, GpuSortAlgo::ThrustLike, DataType::U32, 1);
        assert!(d > SimDuration::ZERO);
    }
}
