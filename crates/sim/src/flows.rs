//! Fluid transfer engine.
//!
//! Concurrently active transfers are *fluid flows*: at every instant each
//! flow progresses at the max-min fair rate computed by the platform's
//! constraint table. Rates change only when the flow set changes, so the
//! engine advances in events: start a flow → re-allocate; earliest
//! completion → advance the clock exactly there, retire the flow,
//! re-allocate.
//!
//! The same engine drives both the paper's interconnect microbenchmarks
//! (Figures 2–7 are literally "start these flows at t=0, report total bytes
//! over the makespan") and, through the virtual GPU runtime, every copy of
//! the sorting algorithms.
//!
//! # Engine internals
//!
//! * **Slab + free list.** Flows live in slots that are recycled after
//!   [`FlowSim::compact`]; a long simulation no longer grows its flow table
//!   without bound. [`FlowId`]s carry a generation counter, so a stale id
//!   held across a `compact()` panics with a clear message instead of
//!   silently aliasing an unrelated flow.
//! * **Active list.** `active_order` keeps the unfinished flows in creation
//!   order — the allocator sees requests in exactly the order the original
//!   engine did (float summation order matters for bit-identical rates),
//!   and per-event work scales with the number of *active* flows, not the
//!   number ever started.
//! * **Completion heap with epoch invalidation.** [`FlowSim::next_completion`]
//!   keeps a min-heap of `(eta, creation-seq, slot)` entries. Any state
//!   change that can move an eta (a re-allocation, or a clock advance —
//!   the per-event `remaining -= rate·dt` decrement can shift the rounded
//!   eta by a nanosecond) bumps an epoch counter; the heap rebuilds lazily
//!   on the next query and is O(1) to peek until the epoch moves again.
//!   The rebuild recomputes etas with exactly the original arithmetic, so
//!   completion times are bit-identical to the reference engine
//!   ([`crate::reference`]).
//! * **Incremental allocation.** Re-allocation goes through a reusable
//!   [`RateAllocator`] (scratch vectors owned across events, flows read by
//!   reference from the slab — no per-event `FlowRequest` clones), runs
//!   *lazily* at the first point rates become observable — so a burst of
//!   starts and completions between two events costs one allocation, where
//!   the original engine paid one per start and one per completion batch —
//!   and is skipped entirely when the active request sequence is unchanged
//!   since the last allocation (zero-byte starts, `compact()`): the
//!   allocator is a pure function of that sequence, so the cached rates
//!   are exact.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fault::{FaultEvent, FaultPlan};
use crate::time::{SimDuration, SimTime};
use msort_topology::{
    ConstraintTable, Endpoint, FabricHealth, FlowRequest, LinkId, LinkState, Platform,
    RateAllocator, Route,
};
use msort_trace::{groups, ArgValue, Recorder, TrackId};

/// Handle to an active (or completed) flow.
///
/// Generation-checked: after [`FlowSim::compact`] retires a completed
/// flow's slot, any further use of an id for that slot panics instead of
/// silently reading whatever flow was recycled into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    slot: u32,
    generation: u32,
}

#[derive(Debug)]
struct ActiveFlow {
    request: FlowRequest,
    remaining: f64,
    rate: f64,
    done: bool,
    /// Monotonic creation number: orders allocator input and breaks
    /// completion-time ties in creation order, exactly like the original
    /// engine's first-smallest scan.
    seq: u64,
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    flow: Option<ActiveFlow>,
}

/// Tracks and per-link emission state for an enabled recorder. Present
/// exactly when the attached [`Recorder`] is enabled, so the disabled
/// path stays one `Option` test per site.
#[derive(Debug)]
struct RecState {
    /// Per-link utilization counter series live here.
    links_track: TrackId,
    /// Per-flow async lifecycle events live here.
    flows_track: TrackId,
    /// Fault/restore instants live here.
    faults_track: TrackId,
    /// Last emitted utilization per topology link (`NaN` = never emitted),
    /// so unchanged links don't emit a sample every allocation epoch.
    last_util: Vec<f64>,
    /// Display name per topology link (counter series names).
    link_names: Vec<String>,
}

/// Human-readable endpoint name for flow labels ("gpu3", "host0").
fn endpoint_label(e: Endpoint) -> String {
    match e {
        Endpoint::HostMem { socket } => format!("host{socket}"),
        Endpoint::GpuMem { index } => format!("gpu{index}"),
    }
}

/// The fluid transfer simulator for one platform.
///
/// Typical driving loop:
/// ```
/// use msort_sim::{FlowSim, SimTime};
/// use msort_topology::{Platform, Endpoint};
/// let platform = Platform::test_pcie(2);
/// let mut sim = FlowSim::new(&platform);
/// let r0 = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
/// let r1 = sim.route(Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
/// sim.start(&r0, 1 << 30);
/// sim.start(&r1, 1 << 30);
/// while let Some((t, _flow)) = sim.next_completion() {
///     sim.advance_to(t);
/// }
/// assert!(sim.now() > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct FlowSim<'p> {
    platform: &'p Platform,
    slots: Vec<Slot>,
    /// Slots available for reuse (freed by `compact`).
    free: Vec<u32>,
    /// Active (unfinished) slots in flow-creation order.
    active_order: Vec<u32>,
    now: SimTime,
    next_seq: u64,
    /// Bumped whenever any active flow's `rate` or `remaining` may have
    /// changed; the completion heap is stale while it trails this.
    epoch: u64,
    /// Epoch the completion heap was built at.
    heap_epoch: u64,
    /// Min-heap of `(eta, creation-seq, slot)` over the active flows.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Bumped whenever `active_order` membership changes; re-allocation is
    /// skipped while it matches `allocated_at` (the active request
    /// sequence — the allocator's entire input — is unchanged).
    membership: u64,
    /// `membership` stamp of the last executed allocation.
    allocated_at: Option<u64>,
    allocator: RateAllocator,
    /// Scratch for allocator output (reused across events).
    rates: Vec<f64>,
    /// Scheduled fault events, sorted by firing time; `fault_cursor` is the
    /// index of the next unfired event. Both stay empty/zero for fault-free
    /// simulations.
    faults: Vec<FaultEvent>,
    fault_cursor: usize,
    /// Link health, created lazily when the first fault fires. `None` means
    /// pristine: the allocator reads the platform's canonical table and
    /// every code path is bit-identical to a build without fault support.
    health: Option<FabricHealth>,
    /// Health-adjusted constraint table (same shape as the platform's, with
    /// scaled capacities). Present exactly when `health` is.
    fault_table: Option<ConstraintTable>,
    /// Flows truncated by a `LinkDown`, with their undelivered bytes, not
    /// yet collected via [`FlowSim::take_interrupted`].
    interrupted: Vec<(FlowId, u64)>,
    /// Observability sink; disabled by default. Recording is purely
    /// observational: it never changes a rate, a clock value, or which
    /// flows complete when.
    recorder: Recorder,
    /// Lazily-built track/emission state; `Some` iff `recorder` is enabled.
    rec: Option<RecState>,
}

impl<'p> FlowSim<'p> {
    /// Create an idle simulator at `t = 0`.
    #[must_use]
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            slots: Vec::new(),
            free: Vec::new(),
            active_order: Vec::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            epoch: 0,
            heap_epoch: u64::MAX,
            heap: BinaryHeap::new(),
            membership: 0,
            allocated_at: None,
            allocator: RateAllocator::new(),
            rates: Vec::new(),
            faults: Vec::new(),
            fault_cursor: 0,
            health: None,
            fault_table: None,
            interrupted: Vec::new(),
            recorder: Recorder::disabled(),
            rec: None,
        }
    }

    /// Attach a [`Recorder`]. An enabled recorder receives per-link
    /// utilization counters at every allocation epoch, per-flow lifecycle
    /// events (start / rate change / interrupt / complete), and fault
    /// instants; a disabled one costs a single branch per event site.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.rec = recorder.is_enabled().then(|| {
            let topo = &self.platform.topology;
            let link_names = topo
                .links()
                .iter()
                .map(|l| format!("{} ⇄ {}", topo.node(l.a).name, topo.node(l.b).name))
                .collect::<Vec<_>>();
            RecState {
                links_track: recorder.track(groups::LINKS, "utilization"),
                flows_track: recorder.track(groups::FLOWS, "transfers"),
                faults_track: recorder.track(groups::FAULTS, "fabric"),
                last_util: vec![f64::NAN; link_names.len()],
                link_names,
            }
        });
        self.recorder = recorder;
    }

    /// The attached recorder (disabled unless [`FlowSim::set_recorder`]
    /// installed an enabled one).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The platform being simulated.
    #[must_use]
    pub fn platform(&self) -> &'p Platform {
        self.platform
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of flow slots allocated (active, completed, and free). Stays
    /// bounded by the peak concurrent flow count when `compact` is called
    /// between phases.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Find a route on this platform (convenience wrapper).
    #[must_use]
    pub fn route(
        &self,
        src: msort_topology::Endpoint,
        dst: msort_topology::Endpoint,
    ) -> Option<Route> {
        msort_topology::route::route(&self.platform.topology, src, dst)
    }

    // ---- fault injection --------------------------------------------

    /// Install a fault schedule. A no-op for empty plans: no health state
    /// is created and the engine stays bit-identical to a fault-free run.
    /// Events at or before the current time fire on the next advance.
    ///
    /// # Panics
    /// Panics if called after a scheduled fault has already fired (merge
    /// the plans up front instead).
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        assert_eq!(
            self.fault_cursor, 0,
            "fault plans must be installed before the first fault fires"
        );
        self.faults.extend_from_slice(plan.events());
        self.faults.sort_by_key(FaultEvent::at);
    }

    /// When the next scheduled fault fires, if any remain. Event-loop
    /// drivers must not advance past this time in one step: rates computed
    /// before a fault are only valid up to it.
    #[must_use]
    pub fn next_fault_at(&self) -> Option<SimTime> {
        self.faults.get(self.fault_cursor).map(FaultEvent::at)
    }

    /// Link health, present once a fault has fired.
    #[must_use]
    pub fn health(&self) -> Option<&FabricHealth> {
        self.health.as_ref()
    }

    /// Health generation for cache invalidation: 0 while pristine, bumped
    /// on every link state change.
    #[must_use]
    pub fn health_generation(&self) -> u64 {
        self.health.as_ref().map_or(0, FabricHealth::generation)
    }

    /// `true` while `link` can carry traffic.
    #[must_use]
    pub fn link_usable(&self, link: LinkId) -> bool {
        self.health.as_ref().is_none_or(|h| h.is_usable(link))
    }

    /// `true` while every hop of `route` can carry traffic.
    #[must_use]
    pub fn route_usable(&self, route: &Route) -> bool {
        self.health.as_ref().is_none_or(|h| h.route_usable(route))
    }

    /// The constraint table rates are currently allocated against: the
    /// health-adjusted clone once a fault has fired, the platform's
    /// canonical table before.
    #[must_use]
    pub fn constraint_table(&self) -> &ConstraintTable {
        self.fault_table
            .as_ref()
            .unwrap_or_else(|| self.platform.constraint_table())
    }

    /// Drain the flows truncated by `LinkDown` events since the last call,
    /// each with its undelivered byte count. The flows read as `done` (they
    /// will never progress further); the caller re-issues the remaining
    /// bytes over a surviving route.
    pub fn take_interrupted(&mut self) -> Vec<(FlowId, u64)> {
        std::mem::take(&mut self.interrupted)
    }

    /// Change one link's health state: update the adjusted constraint
    /// table and, on a failure, truncate every in-flight flow whose route
    /// loads the link.
    fn apply_fault(&mut self, ev: FaultEvent) {
        let health = self
            .health
            .get_or_insert_with(|| FabricHealth::new(&self.platform.topology));
        let state = match ev {
            FaultEvent::LinkDown { .. } => LinkState::Down,
            FaultEvent::LinkDegrade { factor, .. } => LinkState::Degraded { factor },
            FaultEvent::LinkRestore { .. } => LinkState::Up,
        };
        health.set(ev.link(), state);
        let base = self.platform.constraint_table();
        let table = self.fault_table.get_or_insert_with(|| base.clone());
        health.apply(base, table);

        if let Some(rs) = &self.rec {
            let name = match ev {
                FaultEvent::LinkDown { .. } => "link down",
                FaultEvent::LinkDegrade { .. } => "link degraded",
                FaultEvent::LinkRestore { .. } => "link restored",
            };
            let mut args = vec![(
                "link".to_string(),
                ArgValue::Str(rs.link_names[ev.link().0].clone()),
            )];
            if let FaultEvent::LinkDegrade { factor, .. } = ev {
                args.push(("factor".to_string(), ArgValue::F64(factor)));
            }
            self.recorder
                .instant_args(rs.faults_track, name, "fault", self.now.0, args);
        }

        if matches!(ev, FaultEvent::LinkDown { .. }) {
            // Truncate in-flight flows over the failed link: they stop
            // delivering at the fault instant and surface through
            // `take_interrupted` with their unfinished bytes.
            let (fwd, bwd, dup) = base.link_constraint_ids(ev.link());
            let mut kept = 0;
            for k in 0..self.active_order.len() {
                let slot = self.active_order[k];
                let entry = &mut self.slots[slot as usize];
                let f = entry.flow.as_mut().expect("active slot holds a flow");
                let hit = f
                    .request
                    .constraints
                    .iter()
                    .any(|&(c, _)| c == fwd || c == bwd || Some(c) == dup);
                if hit {
                    self.interrupted.push((
                        FlowId {
                            slot,
                            generation: entry.generation,
                        },
                        f.remaining.ceil() as u64,
                    ));
                    if let Some(rs) = &self.rec {
                        self.recorder.async_instant(
                            rs.flows_track,
                            "interrupted",
                            "flow",
                            f.seq,
                            self.now.0,
                            vec![(
                                "undelivered_bytes".to_string(),
                                ArgValue::U64(f.remaining.ceil() as u64),
                            )],
                        );
                        self.recorder.async_end(
                            rs.flows_track,
                            "transfer",
                            "flow",
                            f.seq,
                            self.now.0,
                        );
                    }
                    f.remaining = 0.0;
                    f.done = true;
                } else {
                    self.active_order[kept] = slot;
                    kept += 1;
                }
            }
            self.active_order.truncate(kept);
        }
        // Capacities (and possibly membership) changed: the cached rates
        // are stale. `membership` is the allocator-input stamp, so bumping
        // it forces the next `ensure_rates` to re-run.
        self.membership += 1;
    }

    // ---- flow lifecycle ---------------------------------------------

    /// Start a transfer of `bytes` along `route` at the current time.
    pub fn start(&mut self, route: &Route, bytes: u64) -> FlowId {
        let label = self.rec.is_some().then(|| {
            format!(
                "{} → {}",
                endpoint_label(route.src),
                endpoint_label(route.dst)
            )
        });
        self.start_labeled(self.platform.flow_request(route), bytes, label)
    }

    /// Start a transfer from an explicit allocator request (used for flows
    /// with custom rate caps, e.g. modeled CPU merges contending for host
    /// memory bandwidth).
    pub fn start_request(&mut self, request: FlowRequest, bytes: u64) -> FlowId {
        self.start_labeled(request, bytes, None)
    }

    fn start_labeled(&mut self, request: FlowRequest, bytes: u64, label: Option<String>) -> FlowId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let flow = ActiveFlow {
            request,
            remaining: bytes as f64,
            rate: 0.0,
            done: bytes == 0,
            seq,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].flow = Some(flow);
                s
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    flow: Some(flow),
                });
                u32::try_from(self.slots.len() - 1).expect("slot count fits u32")
            }
        };
        let id = FlowId {
            slot,
            generation: self.slots[slot as usize].generation,
        };
        if bytes > 0 {
            self.active_order.push(slot);
            self.membership += 1;
            if let Some(rs) = &self.rec {
                self.recorder.async_begin(
                    rs.flows_track,
                    label.as_deref().unwrap_or("transfer"),
                    "flow",
                    seq,
                    self.now.0,
                    vec![("bytes".to_string(), ArgValue::U64(bytes))],
                );
            }
        }
        // No eager re-allocation: rates are computed lazily at the next
        // point they are observable (an advance, an eta query, `rate()`),
        // so a batch of starts costs one allocation, not one per start.
        id
    }

    /// The flow behind `id`, with generation check.
    fn flow(&self, id: FlowId) -> &ActiveFlow {
        let slot = &self.slots[id.slot as usize];
        assert!(
            slot.generation == id.generation,
            "stale FlowId: slot {} generation {} was retired by compact() \
             (slot is now at generation {}); ids of completed flows do not \
             survive compaction",
            id.slot,
            id.generation,
            slot.generation
        );
        slot.flow
            .as_ref()
            .expect("generation-checked slot holds a flow")
    }

    /// `true` once the flow has delivered all its bytes.
    ///
    /// # Panics
    /// Panics if `id` was retired by [`FlowSim::compact`].
    #[must_use]
    pub fn is_done(&self, id: FlowId) -> bool {
        self.flow(id).done
    }

    /// Current rate (bytes/s) of a flow; zero once completed.
    ///
    /// # Panics
    /// Panics if `id` was retired by [`FlowSim::compact`].
    #[must_use]
    pub fn rate(&mut self, id: FlowId) -> f64 {
        self.ensure_rates();
        let f = self.flow(id);
        if f.done {
            0.0
        } else {
            f.rate
        }
    }

    /// Number of currently active (unfinished) flows.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active_order.len()
    }

    /// Earliest upcoming flow completion `(time, flow)`, if any flow is
    /// active.
    ///
    /// O(1) while the engine state is unchanged since the last query; after
    /// a start, advance, or re-allocation the completion heap rebuilds
    /// lazily in one pass over the active flows.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        self.ensure_rates();
        if self.heap_epoch != self.epoch {
            self.rebuild_heap();
        }
        while let Some(&Reverse((eta, seq, slot))) = self.heap.peek() {
            let live = self.slots[slot as usize]
                .flow
                .as_ref()
                .is_some_and(|f| !f.done && f.seq == seq);
            if live {
                return Some((
                    eta,
                    FlowId {
                        slot,
                        generation: self.slots[slot as usize].generation,
                    },
                ));
            }
            self.heap.pop();
        }
        None
    }

    /// Rebuild the completion heap from the active flows, recomputing every
    /// eta with the original engine's arithmetic.
    fn rebuild_heap(&mut self) {
        // Cold path first: a zero-rate active flow means the allocator
        // starved it — impossible for feasible constraint tables, so when
        // it does happen, dump enough state to debug the table.
        for &slot in &self.active_order {
            let f = self.slots[slot as usize]
                .flow
                .as_ref()
                .expect("active slot holds a flow");
            if f.rate <= 0.0 {
                panic!("{}", self.starvation_report(f));
            }
        }
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.clear();
        for &slot in &self.active_order {
            let f = self.slots[slot as usize]
                .flow
                .as_ref()
                .expect("active slot holds a flow");
            let eta = self.now + SimDuration::for_bytes_at(f.remaining.ceil() as u64, f.rate);
            entries.push(Reverse((eta, f.seq, slot)));
        }
        self.heap = BinaryHeap::from(entries);
        self.heap_epoch = self.epoch;
    }

    /// Diagnostic for an allocator-starved flow: the flow's own constraint
    /// list plus the full constraint table with current consumption, with
    /// saturated rows marked.
    fn starvation_report(&self, starved: &ActiveFlow) -> String {
        use std::fmt::Write as _;
        let table = self.constraint_table();
        let mut msg = format!(
            "active flow {} has zero rate: the allocator starved it\n\
             flow: remaining {} B, rate cap {:?}, constraints:\n",
            starved.seq, starved.remaining, starved.request.rate_cap
        );
        for &(c, w) in &starved.request.constraints {
            let _ = writeln!(
                msg,
                "  {:?} weight {w} capacity {:.3e} B/s",
                table.constraints()[c.0].kind,
                table.capacity(c)
            );
        }
        // Current consumption per constraint across all active flows.
        let mut used = vec![0.0f64; table.constraints().len()];
        for &slot in &self.active_order {
            let f = self.slots[slot as usize].flow.as_ref().unwrap();
            for &(c, w) in &f.request.constraints {
                used[c.0] += f.rate * w;
            }
        }
        msg.push_str("constraint table (* = saturated):\n");
        for (i, c) in table.constraints().iter().enumerate() {
            let saturated = used[i] >= c.capacity * 0.999;
            let _ = writeln!(
                msg,
                "  {}[{i}] {:?}: used {:.3e} of {:.3e} B/s",
                if saturated { "*" } else { " " },
                c.kind,
                used[i],
                c.capacity
            );
        }
        // Link health separates a degraded-fabric allocation failure (a
        // flow routed over a dead link) from a genuine modeling bug.
        msg.push_str("link health:\n");
        match &self.health {
            None => msg.push_str("  (no faults scheduled; all links healthy)\n"),
            Some(h) => msg.push_str(&h.describe(&self.platform.topology)),
        }
        msg
    }

    /// Advance the clock to `t`, progressing all active flows linearly and
    /// retiring the ones that finish. Returns the retired flow ids.
    ///
    /// Scheduled faults with firing times in `(now, t]` apply in order:
    /// the clock advances exactly to each fault, the fault fires (rates
    /// re-allocate, downed-link flows truncate), and the advance resumes
    /// under the new capacities. Callers driving an event loop should
    /// still clamp their steps to [`FlowSim::next_fault_at`] — completion
    /// times predicted *before* a fault are not events *after* it, so a
    /// flow that speeds up mid-step would otherwise retire late.
    ///
    /// # Panics
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<FlowId> {
        if self.fault_cursor < self.faults.len() {
            let mut finished = Vec::new();
            while self.fault_cursor < self.faults.len() && self.faults[self.fault_cursor].at() <= t
            {
                let ev = self.faults[self.fault_cursor];
                self.fault_cursor += 1;
                if ev.at() > self.now {
                    self.advance_plain(ev.at(), &mut finished);
                }
                self.apply_fault(ev);
            }
            self.advance_plain(t, &mut finished);
            return finished;
        }
        let mut finished = Vec::new();
        self.advance_plain(t, &mut finished);
        finished
    }

    /// The fault-free advance: exactly the original engine's arithmetic.
    fn advance_plain(&mut self, t: SimTime, finished: &mut Vec<FlowId>) {
        // Flows progress at the rates of the current active set; compute
        // them now if starts/completions have accumulated since the last
        // allocation.
        self.ensure_rates();
        let dt = t.since(self.now).as_secs_f64();
        self.now = t;
        let already_finished = finished.len();
        let mut kept = 0;
        for k in 0..self.active_order.len() {
            let slot = self.active_order[k];
            let entry = &mut self.slots[slot as usize];
            let f = entry.flow.as_mut().expect("active slot holds a flow");
            f.remaining -= f.rate * dt;
            // Sub-nanosecond residue is a completed flow: rates are exact
            // between events, but `for_bytes_at` rounds up to whole ns.
            if f.remaining <= f.rate * 1e-9 + 1e-6 {
                f.remaining = 0.0;
                f.done = true;
                finished.push(FlowId {
                    slot,
                    generation: entry.generation,
                });
            } else {
                self.active_order[kept] = slot;
                kept += 1;
            }
        }
        self.active_order.truncate(kept);
        if let Some(rs) = &self.rec {
            for id in &finished[already_finished..] {
                let f = self.slots[id.slot as usize]
                    .flow
                    .as_ref()
                    .expect("finished slot holds a flow");
                self.recorder
                    .async_end(rs.flows_track, "transfer", "flow", f.seq, t.0);
            }
        }
        if dt > 0.0 {
            // The decrement above can move rounded etas by a nanosecond;
            // force the heap to recompute them.
            self.epoch += 1;
        }
        if !finished.is_empty() {
            self.membership += 1;
        }
    }

    /// Run until every flow completes; returns the final time. Steps are
    /// clamped to scheduled fault times so completions predicted before a
    /// fault never overshoot it.
    pub fn run_to_idle(&mut self) -> SimTime {
        while let Some((t, _)) = self.next_completion() {
            let t = match self.next_fault_at() {
                Some(tf) if tf < t => tf,
                _ => t,
            };
            self.advance_to(t);
        }
        self.now
    }

    /// Retire all completed flows' slots onto the free list for reuse. The
    /// retired flows' [`FlowId`]s become stale: using one afterwards panics
    /// (generation check) instead of silently reading a recycled slot.
    /// Useful between independent experiment phases.
    pub fn compact(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.flow.as_ref().is_some_and(|f| f.done) {
                slot.flow = None;
                slot.generation += 1;
                self.free
                    .push(u32::try_from(i).expect("slot index fits u32"));
            }
        }
        // Active membership is unchanged: the cached rates stay valid (the
        // original engine recomputed identical rates here).
    }

    /// Bring the active flows' rates up to date, unless the active request
    /// sequence is unchanged since the last allocation (then the cached
    /// rates are already exact — the allocator is a pure function of that
    /// sequence). Called lazily wherever rates become observable, so any
    /// burst of starts/completions between two events costs exactly one
    /// allocation.
    fn ensure_rates(&mut self) {
        if self.allocated_at == Some(self.membership) {
            return;
        }
        // Recording needs the pre-allocation rates to emit rate-*change*
        // events; capture them up front (recorder-on only).
        let old_rates: Option<Vec<f64>> = self.rec.as_ref().map(|_| {
            self.active_order
                .iter()
                .map(|&slot| {
                    self.slots[slot as usize]
                        .flow
                        .as_ref()
                        .expect("active slot holds a flow")
                        .rate
                })
                .collect()
        });
        {
            let FlowSim {
                platform,
                slots,
                active_order,
                allocator,
                rates,
                fault_table,
                ..
            } = self;
            // Pristine runs read the platform's canonical table through the
            // same expression as before any fault support existed; only a
            // fired fault swaps in the health-adjusted clone.
            let table = fault_table
                .as_ref()
                .unwrap_or_else(|| platform.constraint_table());
            allocator.allocate_with(
                table,
                active_order.len(),
                |i| {
                    &slots[active_order[i] as usize]
                        .flow
                        .as_ref()
                        .expect("active slot holds a flow")
                        .request
                },
                rates,
            );
        }
        for (k, &slot) in self.active_order.iter().enumerate() {
            let rate = self.rates[k];
            let f = self.slots[slot as usize]
                .flow
                .as_mut()
                .expect("active slot holds a flow");
            assert!(
                rate.is_finite(),
                "flow {} is unconstrained; give intra-device copies a rate cap",
                f.seq
            );
            f.rate = rate;
        }
        self.allocated_at = Some(self.membership);
        self.epoch += 1;
        if let Some(old_rates) = old_rates {
            self.record_allocation(&old_rates);
        }
    }

    /// Recorder-on only: emit per-flow rate-change events and per-link
    /// utilization counter samples for the allocation that just ran.
    fn record_allocation(&mut self, old_rates: &[f64]) {
        let Some(rs) = &mut self.rec else { return };
        let at = self.now.0;
        for (k, &slot) in self.active_order.iter().enumerate() {
            let f = self.slots[slot as usize]
                .flow
                .as_ref()
                .expect("active slot holds a flow");
            if old_rates.get(k).copied() != Some(f.rate) {
                self.recorder.async_instant(
                    rs.flows_track,
                    "rate",
                    "flow",
                    f.seq,
                    at,
                    vec![("gbps".to_string(), ArgValue::F64(f.rate / 1e9))],
                );
            }
        }
        // Per-link utilization: consumption over every constraint, then
        // each link reports the most loaded of its (fwd, bwd, duplex)
        // constraint rows. Unchanged links emit nothing.
        let table = self
            .fault_table
            .as_ref()
            .unwrap_or_else(|| self.platform.constraint_table());
        let mut used = vec![0.0f64; table.constraints().len()];
        for &slot in &self.active_order {
            let f = self.slots[slot as usize]
                .flow
                .as_ref()
                .expect("active slot holds a flow");
            for &(c, w) in &f.request.constraints {
                used[c.0] += f.rate * w;
            }
        }
        for (i, last) in rs.last_util.iter_mut().enumerate() {
            let (fwd, bwd, dup) = table.link_constraint_ids(LinkId(i));
            let mut util = 0.0f64;
            for c in [Some(fwd), Some(bwd), dup].into_iter().flatten() {
                let cap = table.capacity(c);
                if cap > 0.0 {
                    util = util.max(used[c.0] / cap);
                }
            }
            if last.is_nan() || (util - *last).abs() > 1e-9 {
                self.recorder
                    .counter(rs.links_track, &rs.link_names[i], at, util);
                *last = util;
            }
        }
    }
}

/// Outcome of running a set of same-sized transfers to completion, as the
/// paper's interconnect microbenchmarks report them.
#[derive(Debug, Clone, Copy)]
pub struct TransferReport {
    /// Total bytes moved across all flows.
    pub total_bytes: u64,
    /// Time from first start to last completion.
    pub makespan: SimDuration,
}

impl TransferReport {
    /// Aggregate throughput in decimal GB/s — the figure-of-merit of the
    /// paper's Figures 2–7 (total bytes over the slowest stream's time).
    #[must_use]
    pub fn throughput_gbps(&self) -> f64 {
        self.total_bytes as f64 / self.makespan.as_secs_f64() / 1e9
    }
}

/// Start one flow of `bytes` per route, all at `t = 0`, run to completion,
/// and report aggregate throughput. This is exactly the measurement loop of
/// the paper's transfer benchmarks.
#[must_use]
pub fn measure_concurrent(platform: &Platform, routes: &[Route], bytes: u64) -> TransferReport {
    let mut sim = FlowSim::new(platform);
    for r in routes {
        sim.start(r, bytes);
    }
    let end = sim.run_to_idle();
    TransferReport {
        total_bytes: bytes * routes.len() as u64,
        makespan: end.since(SimTime::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_topology::{gbps, Endpoint, Platform};

    const GIB: u64 = 1 << 30;

    #[test]
    fn single_flow_duration_matches_rate() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        sim.start(&r, 13_000_000_000); // 13 GB at 13 GB/s -> 1 s
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 1.0).abs() < 1e-6, "{end}");
    }

    #[test]
    fn two_flows_on_shared_bottleneck_take_twice_as_long() {
        let p = Platform::test_pcie(2);
        // Both flows share the memory read cap? test_pcie read cap is 80,
        // links 13 each: independent. Use the same GPU twice instead: the
        // two flows share one 13 GB/s link.
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        sim.start(&r, 13_000_000_000);
        sim.start(&r, 13_000_000_000);
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 2.0).abs() < 1e-5, "{end}");
    }

    #[test]
    fn staggered_start_speeds_up_survivor() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let a = sim.start(&r, 13_000_000_000);
        let b = sim.start(&r, 6_500_000_000);
        // Fair share 6.5 each: b finishes at t=1 having moved 6.5 GB;
        // a then runs alone at 13 GB/s for its remaining 6.5 GB -> t=1.5.
        let (t1, first) = sim.next_completion().unwrap();
        assert_eq!(first, b);
        sim.advance_to(t1);
        assert!(sim.is_done(b));
        assert!(!sim.is_done(a));
        assert!((sim.rate(a) - gbps(13.0)).abs() < 1e3);
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 1.5).abs() < 1e-5, "{end}");
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let f = sim.start(&r, 0);
        assert!(sim.is_done(f));
        assert!(sim.next_completion().is_none());
    }

    #[test]
    fn zero_byte_start_leaves_rates_untouched() {
        // A zero-byte flow never enters the active set, so the allocation
        // skip applies and the surviving flow's rate is unchanged.
        let p = Platform::test_pcie(2);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let a = sim.start(&r, GIB);
        let before = sim.rate(a);
        let z = sim.start(&r, 0);
        assert!(sim.is_done(z));
        assert_eq!(sim.rate(a).to_bits(), before.to_bits());
    }

    #[test]
    fn measure_concurrent_reports_aggregate() {
        let p = Platform::test_pcie(2);
        let r0 =
            msort_topology::route::route(&p.topology, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let r1 =
            msort_topology::route::route(&p.topology, Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
        let rep = measure_concurrent(&p, &[r0, r1], 4 * GIB);
        // Independent 13 GB/s links: aggregate ~26 GB/s.
        assert!((rep.throughput_gbps() - 26.0).abs() < 0.3, "{rep:?}");
    }

    #[test]
    fn compact_drops_finished_flows() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        sim.start(&r, GIB);
        sim.run_to_idle();
        assert_eq!(sim.active_count(), 0);
        sim.compact();
        // New flows after compaction behave normally.
        let f = sim.start(&r, GIB);
        assert!(!sim.is_done(f));
        sim.run_to_idle();
        assert!(sim.is_done(f));
    }

    #[test]
    fn compact_reuses_slots() {
        // Repeated phase-style usage (start, drain, compact) must not grow
        // the slot table: retired slots go to the free list and come back.
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        for _ in 0..10 {
            sim.start(&r, GIB);
            sim.start(&r, GIB / 2);
            sim.run_to_idle();
            sim.compact();
        }
        assert_eq!(sim.slot_count(), 2);
    }

    #[test]
    #[should_panic(expected = "stale FlowId")]
    fn stale_flow_id_panics_after_compact() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let f = sim.start(&r, GIB);
        sim.run_to_idle();
        sim.compact();
        // The slot was retired (and may be recycled): the old id must not
        // silently read it.
        let _ = sim.is_done(f);
    }

    #[test]
    fn ids_of_completed_flows_stay_valid_until_compact() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let f = sim.start(&r, GIB);
        sim.run_to_idle();
        assert!(sim.is_done(f));
        assert_eq!(sim.rate(f), 0.0);
    }

    #[test]
    fn clock_is_monotonic_across_events() {
        let p = Platform::test_pcie(2);
        let mut sim = FlowSim::new(&p);
        let r0 = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let r1 = sim
            .route(Endpoint::gpu(1), Endpoint::HostMem { socket: 0 })
            .unwrap();
        sim.start(&r0, GIB);
        sim.start(&r1, 3 * GIB);
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = sim.next_completion() {
            assert!(t >= last);
            sim.advance_to(t);
            last = t;
        }
    }

    #[test]
    fn empty_fault_plan_is_a_no_op() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        sim.schedule_faults(&crate::FaultPlan::new());
        assert_eq!(sim.health_generation(), 0);
        assert!(sim.health().is_none());
        assert!(sim.next_fault_at().is_none());
    }

    #[test]
    fn degrade_slows_inflight_flow() {
        // 13 GB at 13 GB/s completes at t=1s fault-free. Degrading the
        // link to 50% at t=0.5s leaves 6.5 GB at 6.5 GB/s: t=1.5s.
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let link = r.hops[0].link;
        sim.schedule_faults(&crate::FaultPlan::new().link_degrade(SimTime(500_000_000), link, 0.5));
        sim.start(&r, 13_000_000_000);
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 1.5).abs() < 1e-6, "{end}");
        assert_eq!(sim.health_generation(), 1);
    }

    #[test]
    fn restore_brings_capacity_back() {
        // Degraded to 50% for [0.5s, 1.0s]: 0.5s at 13, 0.5s at 6.5, then
        // 13 again -> 13·0.5 + 6.5·0.5 = 9.75 GB done at t=1, remaining
        // 3.25 GB at 13 GB/s -> total 1.25s.
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let link = r.hops[0].link;
        sim.schedule_faults(
            &crate::FaultPlan::new()
                .link_degrade(SimTime(500_000_000), link, 0.5)
                .link_restore(SimTime(1_000_000_000), link),
        );
        sim.start(&r, 13_000_000_000);
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 1.25).abs() < 1e-6, "{end}");
    }

    #[test]
    fn link_down_truncates_and_reports_interrupted() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let link = r.hops[0].link;
        sim.schedule_faults(&crate::FaultPlan::new().link_down(SimTime(250_000_000), link));
        let f = sim.start(&r, 13_000_000_000);
        // The flow can never complete; the advance stops at the fault.
        sim.advance_to(SimTime(250_000_000));
        let interrupted = sim.take_interrupted();
        assert_eq!(interrupted.len(), 1);
        let (fid, remaining) = interrupted[0];
        assert_eq!(fid, f);
        // 0.25 s at 13 GB/s delivered 3.25 GB of 13 GB.
        assert_eq!(remaining, 9_750_000_000);
        assert!(sim.is_done(f));
        assert_eq!(sim.active_count(), 0);
        assert!(sim.next_completion().is_none());
        assert!(!sim.link_usable(link));
        assert!(!sim.route_usable(&r));
        // A second drain returns nothing.
        assert!(sim.take_interrupted().is_empty());
    }

    #[test]
    fn unaffected_flow_survives_another_links_failure() {
        let p = Platform::test_pcie(2);
        let mut sim = FlowSim::new(&p);
        let r0 = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let r1 = sim.route(Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
        sim.schedule_faults(
            &crate::FaultPlan::new().link_down(SimTime(100_000_000), r1.hops[0].link),
        );
        let a = sim.start(&r0, 13_000_000_000);
        let b = sim.start(&r1, 13_000_000_000);
        let end = sim.run_to_idle();
        assert!(sim.is_done(a));
        // The survivor still takes its full fault-free second.
        assert!((end.as_secs_f64() - 1.0).abs() < 1e-6, "{end}");
        let interrupted = sim.take_interrupted();
        assert_eq!(interrupted.len(), 1);
        assert_eq!(interrupted[0].0, b);
    }

    #[test]
    #[should_panic(expected = "link health")]
    fn starting_over_a_dead_link_panics_with_health_report() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        sim.schedule_faults(&crate::FaultPlan::new().link_down(SimTime(1), r.hops[0].link));
        sim.advance_to(SimTime(1));
        // The caller failed to re-route: zero capacity starves the flow
        // and the diagnostic names the downed link.
        sim.start(&r, 1 << 20);
        let _ = sim.next_completion();
    }

    #[test]
    fn repeated_queries_are_stable() {
        // next_completion is pure between state changes: repeated calls
        // return the same event.
        let p = Platform::test_pcie(2);
        let mut sim = FlowSim::new(&p);
        let r0 = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let r1 = sim.route(Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
        sim.start(&r0, GIB);
        sim.start(&r1, 2 * GIB);
        let first = sim.next_completion();
        assert_eq!(first, sim.next_completion());
        assert_eq!(first, sim.next_completion());
    }
}
