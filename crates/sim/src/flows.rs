//! Fluid transfer engine.
//!
//! Concurrently active transfers are *fluid flows*: at every instant each
//! flow progresses at the max-min fair rate computed by
//! [`msort_topology::allocate_rates`] from the platform's constraint table.
//! Rates change only when the flow set changes, so the engine advances in
//! events: start a flow → re-allocate; earliest completion → advance the
//! clock exactly there, retire the flow, re-allocate.
//!
//! The same engine drives both the paper's interconnect microbenchmarks
//! (Figures 2–7 are literally "start these flows at t=0, report total bytes
//! over the makespan") and, through the virtual GPU runtime, every copy of
//! the sorting algorithms.

use crate::time::{SimDuration, SimTime};
use msort_topology::{allocate_rates, FlowRequest, Platform, Route};

/// Handle to an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(usize);

#[derive(Debug)]
struct ActiveFlow {
    request: FlowRequest,
    remaining: f64,
    rate: f64,
    done: bool,
}

/// The fluid transfer simulator for one platform.
///
/// Typical driving loop:
/// ```
/// use msort_sim::{FlowSim, SimTime};
/// use msort_topology::{Platform, Endpoint};
/// let platform = Platform::test_pcie(2);
/// let mut sim = FlowSim::new(&platform);
/// let r0 = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
/// let r1 = sim.route(Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
/// sim.start(&r0, 1 << 30);
/// sim.start(&r1, 1 << 30);
/// while let Some((t, _flow)) = sim.next_completion() {
///     sim.advance_to(t);
/// }
/// assert!(sim.now() > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct FlowSim<'p> {
    platform: &'p Platform,
    flows: Vec<ActiveFlow>,
    now: SimTime,
}

impl<'p> FlowSim<'p> {
    /// Create an idle simulator at `t = 0`.
    #[must_use]
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            flows: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// The platform being simulated.
    #[must_use]
    pub fn platform(&self) -> &'p Platform {
        self.platform
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Find a route on this platform (convenience wrapper).
    #[must_use]
    pub fn route(
        &self,
        src: msort_topology::Endpoint,
        dst: msort_topology::Endpoint,
    ) -> Option<Route> {
        msort_topology::route::route(&self.platform.topology, src, dst)
    }

    /// Start a transfer of `bytes` along `route` at the current time.
    pub fn start(&mut self, route: &Route, bytes: u64) -> FlowId {
        self.start_request(self.platform.flow_request(route), bytes)
    }

    /// Start a transfer from an explicit allocator request (used for flows
    /// with custom rate caps, e.g. modeled CPU merges contending for host
    /// memory bandwidth).
    pub fn start_request(&mut self, request: FlowRequest, bytes: u64) -> FlowId {
        let id = FlowId(self.flows.len());
        self.flows.push(ActiveFlow {
            request,
            remaining: bytes as f64,
            rate: 0.0,
            done: bytes == 0,
        });
        self.reallocate();
        id
    }

    /// `true` once the flow has delivered all its bytes.
    #[must_use]
    pub fn is_done(&self, id: FlowId) -> bool {
        self.flows[id.0].done
    }

    /// Current rate (bytes/s) of a flow; zero once completed.
    #[must_use]
    pub fn rate(&self, id: FlowId) -> f64 {
        if self.flows[id.0].done {
            0.0
        } else {
            self.flows[id.0].rate
        }
    }

    /// Number of currently active (unfinished) flows.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.flows.iter().filter(|f| !f.done).count()
    }

    /// Earliest upcoming flow completion `(time, flow)`, if any flow is
    /// active.
    #[must_use]
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (i, f) in self.flows.iter().enumerate() {
            if f.done {
                continue;
            }
            assert!(
                f.rate > 0.0,
                "active flow {i} has zero rate: the allocator starved it"
            );
            let eta = self.now + SimDuration::for_bytes_at(f.remaining.ceil() as u64, f.rate);
            if best.is_none_or(|(t, _)| eta < t) {
                best = Some((eta, FlowId(i)));
            }
        }
        best
    }

    /// Advance the clock to `t`, progressing all active flows linearly and
    /// retiring the ones that finish. Returns the retired flow ids.
    ///
    /// # Panics
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<FlowId> {
        let dt = t.since(self.now).as_secs_f64();
        self.now = t;
        let mut finished = Vec::new();
        for (i, f) in self.flows.iter_mut().enumerate() {
            if f.done {
                continue;
            }
            f.remaining -= f.rate * dt;
            // Sub-nanosecond residue is a completed flow: rates are exact
            // between events, but `for_bytes_at` rounds up to whole ns.
            if f.remaining <= f.rate * 1e-9 + 1e-6 {
                f.remaining = 0.0;
                f.done = true;
                finished.push(FlowId(i));
            }
        }
        if !finished.is_empty() {
            self.reallocate();
        }
        finished
    }

    /// Run until every flow completes; returns the final time.
    pub fn run_to_idle(&mut self) -> SimTime {
        while let Some((t, _)) = self.next_completion() {
            self.advance_to(t);
        }
        self.now
    }

    /// Drop all completed flows' bookkeeping (ids of retired flows become
    /// invalid). Useful between independent experiment phases.
    pub fn compact(&mut self) {
        self.flows.retain(|f| !f.done);
        // Indices shifted: only valid when no external FlowIds are held.
        self.reallocate();
    }

    fn reallocate(&mut self) {
        let active: Vec<usize> = (0..self.flows.len())
            .filter(|&i| !self.flows[i].done)
            .collect();
        let requests: Vec<FlowRequest> = active
            .iter()
            .map(|&i| self.flows[i].request.clone())
            .collect();
        let rates = allocate_rates(self.platform.constraint_table(), &requests);
        for (&i, &rate) in active.iter().zip(rates.iter()) {
            assert!(
                rate.is_finite(),
                "flow {i} is unconstrained; give intra-device copies a rate cap"
            );
            self.flows[i].rate = rate;
        }
    }
}

/// Outcome of running a set of same-sized transfers to completion, as the
/// paper's interconnect microbenchmarks report them.
#[derive(Debug, Clone, Copy)]
pub struct TransferReport {
    /// Total bytes moved across all flows.
    pub total_bytes: u64,
    /// Time from first start to last completion.
    pub makespan: SimDuration,
}

impl TransferReport {
    /// Aggregate throughput in decimal GB/s — the figure-of-merit of the
    /// paper's Figures 2–7 (total bytes over the slowest stream's time).
    #[must_use]
    pub fn throughput_gbps(&self) -> f64 {
        self.total_bytes as f64 / self.makespan.as_secs_f64() / 1e9
    }
}

/// Start one flow of `bytes` per route, all at `t = 0`, run to completion,
/// and report aggregate throughput. This is exactly the measurement loop of
/// the paper's transfer benchmarks.
#[must_use]
pub fn measure_concurrent(platform: &Platform, routes: &[Route], bytes: u64) -> TransferReport {
    let mut sim = FlowSim::new(platform);
    for r in routes {
        sim.start(r, bytes);
    }
    let end = sim.run_to_idle();
    TransferReport {
        total_bytes: bytes * routes.len() as u64,
        makespan: end.since(SimTime::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_topology::{gbps, Endpoint, Platform};

    const GIB: u64 = 1 << 30;

    #[test]
    fn single_flow_duration_matches_rate() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        sim.start(&r, 13_000_000_000); // 13 GB at 13 GB/s -> 1 s
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 1.0).abs() < 1e-6, "{end}");
    }

    #[test]
    fn two_flows_on_shared_bottleneck_take_twice_as_long() {
        let p = Platform::test_pcie(2);
        // Both flows share the memory read cap? test_pcie read cap is 80,
        // links 13 each: independent. Use the same GPU twice instead: the
        // two flows share one 13 GB/s link.
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        sim.start(&r, 13_000_000_000);
        sim.start(&r, 13_000_000_000);
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 2.0).abs() < 1e-5, "{end}");
    }

    #[test]
    fn staggered_start_speeds_up_survivor() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let a = sim.start(&r, 13_000_000_000);
        let b = sim.start(&r, 6_500_000_000);
        // Fair share 6.5 each: b finishes at t=1 having moved 6.5 GB;
        // a then runs alone at 13 GB/s for its remaining 6.5 GB -> t=1.5.
        let (t1, first) = sim.next_completion().unwrap();
        assert_eq!(first, b);
        sim.advance_to(t1);
        assert!(sim.is_done(b));
        assert!(!sim.is_done(a));
        assert!((sim.rate(a) - gbps(13.0)).abs() < 1e3);
        let end = sim.run_to_idle();
        assert!((end.as_secs_f64() - 1.5).abs() < 1e-5, "{end}");
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let f = sim.start(&r, 0);
        assert!(sim.is_done(f));
        assert!(sim.next_completion().is_none());
    }

    #[test]
    fn measure_concurrent_reports_aggregate() {
        let p = Platform::test_pcie(2);
        let r0 =
            msort_topology::route::route(&p.topology, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let r1 =
            msort_topology::route::route(&p.topology, Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
        let rep = measure_concurrent(&p, &[r0, r1], 4 * GIB);
        // Independent 13 GB/s links: aggregate ~26 GB/s.
        assert!((rep.throughput_gbps() - 26.0).abs() < 0.3, "{rep:?}");
    }

    #[test]
    fn compact_drops_finished_flows() {
        let p = Platform::test_pcie(1);
        let mut sim = FlowSim::new(&p);
        let r = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        sim.start(&r, GIB);
        sim.run_to_idle();
        assert_eq!(sim.active_count(), 0);
        sim.compact();
        // New flows after compaction behave normally.
        let f = sim.start(&r, GIB);
        assert!(!sim.is_done(f));
        sim.run_to_idle();
        assert!(sim.is_done(f));
    }

    #[test]
    fn clock_is_monotonic_across_events() {
        let p = Platform::test_pcie(2);
        let mut sim = FlowSim::new(&p);
        let r0 = sim.route(Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let r1 = sim
            .route(Endpoint::gpu(1), Endpoint::HostMem { socket: 0 })
            .unwrap();
        sim.start(&r0, GIB);
        sim.start(&r1, 3 * GIB);
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = sim.next_completion() {
            assert!(t >= last);
            sim.advance_to(t);
            last = t;
        }
    }
}
