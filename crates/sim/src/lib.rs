//! Discrete-event fluid-flow simulation of multi-GPU data movement and
//! kernel execution.
//!
//! The paper's experiments run on three physical servers we do not have;
//! this crate is the substitute. It provides:
//!
//! * [`time`] — the simulated clock ([`SimTime`], [`SimDuration`]; integer
//!   nanoseconds, so event ordering is exact and deterministic);
//! * [`flows`] — the fluid transfer engine: concurrently active transfers
//!   progress at the max-min fair rates computed from the platform's
//!   constraint table, with rates re-allocated whenever a flow starts or
//!   finishes. Between events every flow advances linearly, so completion
//!   times are exact, not approximated;
//! * [`calibrate`] — kernel and CPU cost models (GPU sort/merge durations,
//!   device-local copies, CPU multiway merge, PARADIS) with constants
//!   anchored to the paper's own measurements (Table 2, Figures 12–15).
//!
//! Consistency check worth knowing about: composing these models end to end
//! reproduces the paper's single-GPU baselines without any further tuning —
//! e.g. sorting 2 B keys on one GPU costs 0.36 s simulated on the AC922
//! (paper: 0.35 s), 0.71 s on the DGX A100 (paper: 0.72 s), and 1.40 s on
//! the DELTA D22x (paper: 1.37 s).
//!
//! ```
//! use msort_sim::{CostModel, GpuSortAlgo};
//! use msort_topology::{GpuModel, PlatformId};
//! use msort_data::DataType;
//!
//! // Table 2's anchor: Thrust sorts 1B u32 keys in 36 ms on an A100.
//! let model = CostModel::for_platform_id(PlatformId::DgxA100);
//! let d = model.gpu_sort(GpuModel::A100, GpuSortAlgo::ThrustLike, DataType::U32, 1_000_000_000);
//! assert!((d.as_millis_f64() - 36.0).abs() < 0.5);
//! ```

pub mod calibrate;
pub mod fault;
pub mod flows;
pub mod reference;
pub mod time;

pub use calibrate::{CostModel, GpuSortAlgo};
pub use fault::{FaultEvent, FaultPlan};
pub use flows::{FlowId, FlowSim};
pub use time::{SimDuration, SimTime};
