//! PARADIS — parallel in-place radix sort (Cho et al., VLDB 2015).
//!
//! PARADIS is the state-of-the-art parallel CPU radix sort the paper uses as
//! its CPU-only baseline. The implementation follows the published design:
//!
//! 1. **Histogram**: threads count digit occurrences over stripes of the
//!    input; a prefix sum yields exact bucket boundaries.
//! 2. **Speculative permutation**: the *remaining* (unpermuted) range of each
//!    bucket is divided into one private stripe per thread. Each thread
//!    cycle-chases elements between the stripe heads it owns — entirely
//!    synchronization-free, because no two threads ever touch the same
//!    stripe. A thread's stripe of some destination bucket can fill up while
//!    foreign elements for it remain elsewhere, so a pass may leave some
//!    elements misplaced.
//! 3. **Repair**: per bucket (buckets distributed over threads), misplaced
//!    elements are compacted to the bucket's tail, so each bucket's remainder
//!    is again one contiguous range.
//! 4. Steps 2–3 repeat on the (geometrically shrinking) remainders until all
//!    buckets are clean. As a termination safety net, a pass that makes no
//!    progress falls back to a single-stripe (sequential) permutation, which
//!    provably completes.
//!
//! After the most-significant digit is fully partitioned, PARADIS recurses
//! into the buckets on the next digit; bucket recursion is distributed over
//! the thread pool, and small buckets use a comparison sort.

use crate::lsb_radix::{BUCKETS, DIGIT_BITS};
use msort_data::keys::{RadixImage, SortKey};

/// Tuning parameters for [`paradis_sort`].
#[derive(Debug, Clone, Copy)]
pub struct ParadisConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Buckets at or below this size use a comparison sort.
    pub small_sort_threshold: usize,
}

impl Default for ParadisConfig {
    fn default() -> Self {
        Self {
            threads: crate::default_threads(),
            small_sort_threshold: 256,
        }
    }
}

/// Sort `data` in place with PARADIS using the default configuration.
pub fn paradis_sort<K: SortKey>(data: &mut [K]) {
    paradis_sort_with(data, ParadisConfig::default());
}

/// Sort `data` in place with PARADIS using an explicit configuration.
pub fn paradis_sort_with<K: SortKey>(data: &mut [K], config: ParadisConfig) {
    let threads = config.threads.max(1);
    if data.len() <= config.small_sort_threshold {
        data.sort_unstable_by(|a, b| a.total_cmp_key(b));
        return;
    }
    let top_shift = K::Radix::BITS - DIGIT_BITS;
    recurse(data, top_shift, threads, config.small_sort_threshold);
}

fn recurse<K: SortKey>(data: &mut [K], shift: u32, threads: usize, small: usize) {
    if data.len() <= small {
        data.sort_unstable_by(|a, b| a.total_cmp_key(b));
        return;
    }

    let bounds = parallel_partition(data, shift, threads);
    if shift == 0 {
        return;
    }
    let next_shift = shift - DIGIT_BITS;

    // Recurse into the buckets, distributing them over the thread pool.
    // Split `data` into disjoint bucket slices first so each worker owns its
    // buckets exclusively — no unsafe aliasing, no locks.
    let mut slices: Vec<&mut [K]> = Vec::with_capacity(BUCKETS);
    let mut rest = data;
    let mut prev = 0usize;
    #[allow(clippy::needless_range_loop)] // b indexes `bounds` while splitting `rest`
    for b in 1..=BUCKETS {
        let (head, tail) = rest.split_at_mut(bounds[b] - prev);
        slices.push(head);
        rest = tail;
        prev = bounds[b];
    }

    if threads <= 1 {
        for s in slices {
            if s.len() > 1 {
                recurse(s, next_shift, 1, small);
            }
        }
        return;
    }

    // Greedy longest-processing-time assignment of buckets to workers keeps
    // the load balanced even for skewed digit distributions.
    slices.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut queues: Vec<Vec<&mut [K]>> = (0..threads).map(|_| Vec::new()).collect();
    let mut loads = vec![0usize; threads];
    for s in slices {
        let (w, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .expect("at least one worker");
        loads[w] += s.len();
        queues[w].push(s);
    }

    crate::pool::scope(|scope| {
        for queue in queues {
            // Sub-recursion runs single-threaded per bucket: the top-level
            // fan-out already saturates the pool (matching the PARADIS
            // paper's bucket-parallel recursion).
            scope.spawn(move || {
                for s in queue {
                    if s.len() > 1 {
                        recurse(s, next_shift, 1, small);
                    }
                }
            });
        }
    });
}

/// One contiguous remainder range of a bucket awaiting permutation.
#[derive(Debug, Clone, Copy)]
struct Remainder {
    start: usize,
    end: usize,
}

impl Remainder {
    fn len(self) -> usize {
        self.end - self.start
    }
}

/// Partition `data` by the digit at `shift` using the PARADIS speculative
/// permutation + repair loop. Returns bucket boundary offsets.
fn parallel_partition<K: SortKey>(data: &mut [K], shift: u32, threads: usize) -> Vec<usize> {
    // ---- Phase 1: histogram (parallel over stripes). ----
    let hist = parallel_histogram(data, shift, threads);
    let mut bounds = Vec::with_capacity(BUCKETS + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for &c in &hist {
        acc += c;
        bounds.push(acc);
    }

    let mut remainders: Vec<Remainder> = (0..BUCKETS)
        .map(|b| Remainder {
            start: bounds[b],
            end: bounds[b + 1],
        })
        .collect();

    // ---- Phases 2+3: iterate speculative permutation and repair. ----
    loop {
        let total: usize = remainders.iter().map(|r| r.len()).sum();
        if total == 0 {
            break;
        }
        let workers = if total < 4 * threads * BUCKETS {
            // Tiny remainders: stripe subdivision would be all overhead (and
            // a single stripe per bucket completes in one pass).
            1
        } else {
            threads
        };
        speculative_permute(data, shift, &remainders, workers);
        let after = repair(data, shift, &mut remainders, workers);
        if after == 0 {
            break;
        }
        debug_assert!(workers > 1, "single-stripe permutation must fully complete");
        if after == total {
            // No progress (pathological stripe imbalance): finish with the
            // provably complete single-stripe pass.
            speculative_permute(data, shift, &remainders, 1);
            let left = repair(data, shift, &mut remainders, 1);
            debug_assert_eq!(left, 0);
            break;
        }
    }
    bounds
}

fn parallel_histogram<K: SortKey>(data: &[K], shift: u32, threads: usize) -> Vec<usize> {
    if threads <= 1 || data.len() < 1 << 16 {
        let mut hist = vec![0usize; BUCKETS];
        for k in data {
            hist[k.to_radix().digit(shift, DIGIT_BITS)] += 1;
        }
        return hist;
    }
    let stripe = data.len().div_ceil(threads);
    let mut partials: Vec<Vec<usize>> = vec![vec![0usize; BUCKETS]; data.len().div_ceil(stripe)];
    crate::pool::scope(|scope| {
        for (chunk, hist) in data.chunks(stripe).zip(partials.iter_mut()) {
            scope.spawn(move || {
                for k in chunk {
                    hist[k.to_radix().digit(shift, DIGIT_BITS)] += 1;
                }
            });
        }
    });

    let mut hist = vec![0usize; BUCKETS];
    for partial in partials {
        for (h, p) in hist.iter_mut().zip(partial) {
            *h += p;
        }
    }
    hist
}

/// Thread-private view of the permutation state: one stripe per bucket.
struct Stripes {
    /// `heads[b]`: next fill position in this worker's stripe of bucket `b`.
    heads: Vec<usize>,
    /// `tails[b]`: exclusive end of this worker's stripe of bucket `b`.
    tails: Vec<usize>,
}

/// Run the speculative permutation over the given remainders with `workers`
/// private stripes per bucket.
fn speculative_permute<K: SortKey>(
    data: &mut [K],
    shift: u32,
    remainders: &[Remainder],
    workers: usize,
) {
    // Carve each bucket remainder into `workers` stripes. Worker w owns
    // stripe w of every bucket, so the union of worker w's stripes is a
    // disjoint set of index ranges: safe to hand out as raw pointers.
    let mut per_worker: Vec<Stripes> = (0..workers)
        .map(|_| Stripes {
            heads: vec![0; BUCKETS],
            tails: vec![0; BUCKETS],
        })
        .collect();
    for (b, rem) in remainders.iter().enumerate() {
        let len = rem.len();
        let base = len / workers;
        let extra = len % workers;
        let mut pos = rem.start;
        for (w, stripes) in per_worker.iter_mut().enumerate() {
            let take = base + usize::from(w < extra);
            stripes.heads[b] = pos;
            stripes.tails[b] = pos + take;
            pos += take;
        }
        debug_assert_eq!(pos, rem.end);
    }

    let shared = SharedData::new(data);
    if workers == 1 {
        // SAFETY: exclusive access — there is only this one "worker".
        unsafe { permute_stripes(shared, shift, &mut per_worker[0]) };
        return;
    }

    crate::pool::scope(|scope| {
        for mut stripes in per_worker {
            scope.spawn(move || {
                // SAFETY: worker stripes are pairwise disjoint index ranges
                // of `data` (constructed above), so no two threads ever
                // touch the same element; the scope joins before `data` is
                // used again.
                unsafe { permute_stripes(shared, shift, &mut stripes) };
            });
        }
    });
}

/// Raw-pointer view of the data slice used to give scoped worker threads
/// element-disjoint access without forming aliasing `&mut` slices.
struct SharedData<K> {
    ptr: *mut K,
    len: usize,
}

// Manual impls: derive would require `K: Clone`/`K: Copy` bounds on the
// wrapper even though only the pointer is copied.
impl<K> Clone for SharedData<K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K> Copy for SharedData<K> {}

// SAFETY: sending the pointer is safe; all dereferences are guarded by the
// stripe-disjointness contract documented on each unsafe use site.
unsafe impl<K: Send> Send for SharedData<K> {}

impl<K: Copy> SharedData<K> {
    fn new(data: &mut [K]) -> Self {
        Self {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    /// # Safety
    /// `i < self.len` and no other thread accesses index `i` concurrently.
    #[inline]
    unsafe fn read(self, i: usize) -> K {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).read() }
    }

    /// # Safety
    /// `i < self.len` and no other thread accesses index `i` concurrently.
    #[inline]
    unsafe fn write(self, i: usize, v: K) {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).write(v) }
    }

    /// Swap the value at `i` with `*v`.
    ///
    /// # Safety
    /// Same contract as [`SharedData::read`].
    #[inline]
    unsafe fn swap_in(self, i: usize, v: &mut K) {
        debug_assert!(i < self.len);
        unsafe {
            let old = self.ptr.add(i).read();
            self.ptr.add(i).write(*v);
            *v = old;
        }
    }
}

/// The PARADIS speculative permutation for one worker's stripes.
///
/// # Safety
/// The caller must guarantee that the index ranges described by `s` are
/// disjoint from every other concurrent accessor of `data`.
unsafe fn permute_stripes<K: SortKey>(data: SharedData<K>, shift: u32, s: &mut Stripes) {
    for b in 0..BUCKETS {
        let mut pos = s.heads[b];
        while pos < s.tails[b] {
            // SAFETY: `pos` and all `s.heads[d]` lie within this worker's
            // stripes per the function contract.
            let mut v = unsafe { data.read(pos) };
            let mut d = v.to_radix().digit(shift, DIGIT_BITS);
            // Cycle-chase: push v toward its home stripe until the hole at
            // `pos` receives an element of bucket b or the chain gets stuck.
            while d != b && s.heads[d] < s.tails[d] {
                unsafe { data.swap_in(s.heads[d], &mut v) };
                s.heads[d] += 1;
                d = v.to_radix().digit(shift, DIGIT_BITS);
            }
            unsafe { data.write(pos, v) };
            if d == b && pos == s.heads[b] {
                s.heads[b] += 1;
            }
            // Misplaced (stuck) elements stay behind for the repair phase.
            pos += 1;
        }
    }
}

/// Compact misplaced elements of each bucket remainder to the remainder's
/// tail and shrink the remainder accordingly. Returns the total number of
/// still-misplaced elements.
fn repair<K: SortKey>(
    data: &mut [K],
    shift: u32,
    remainders: &mut [Remainder],
    workers: usize,
) -> usize {
    let shared = SharedData::new(data);
    if workers <= 1 {
        for (b, rem) in remainders.iter_mut().enumerate() {
            // SAFETY: exclusive access on this thread.
            unsafe { repair_bucket(shared, shift, b, rem) };
        }
    } else {
        // Each worker repairs a disjoint set of buckets; bucket remainders
        // are pairwise disjoint index ranges of `data`.
        let chunk = BUCKETS.div_ceil(workers);
        crate::pool::scope(|scope| {
            for (ci, rems) in remainders.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (off, rem) in rems.iter_mut().enumerate() {
                        // SAFETY: this worker exclusively owns these buckets'
                        // remainder ranges.
                        unsafe { repair_bucket(shared, shift, ci * chunk + off, rem) };
                    }
                });
            }
        });
    }
    remainders.iter().map(|r| r.len()).sum()
}

/// Two-pointer compaction within one bucket remainder: correctly placed
/// elements move to the front, misplaced ones to the back; the remainder
/// shrinks to just the misplaced tail.
///
/// # Safety
/// No other thread may access `rem`'s index range concurrently.
unsafe fn repair_bucket<K: SortKey>(
    data: SharedData<K>,
    shift: u32,
    b: usize,
    rem: &mut Remainder,
) {
    let mut lo = rem.start;
    let mut hi = rem.end;
    while lo < hi {
        // SAFETY: `lo`/`hi` stay within `rem`'s range per the contract.
        let v = unsafe { data.read(lo) };
        if v.to_radix().digit(shift, DIGIT_BITS) == b {
            lo += 1;
        } else {
            hi -= 1;
            unsafe {
                let w = data.read(hi);
                data.write(hi, v);
                data.write(lo, w);
            }
        }
    }
    rem.start = lo;
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check_with<K: SortKey>(dist: Distribution, n: usize, seed: u64, threads: usize) {
        let input: Vec<K> = generate(dist, n, seed);
        let mut sorted = input.clone();
        paradis_sort_with(
            &mut sorted,
            ParadisConfig {
                threads,
                small_sort_threshold: 64,
            },
        );
        assert!(
            is_sorted(&sorted),
            "{dist:?} n={n} threads={threads} not sorted"
        );
        assert!(same_multiset(&input, &sorted), "{dist:?} lost keys");
    }

    #[test]
    fn single_threaded_across_distributions() {
        for dist in Distribution::paper_set() {
            check_with::<u32>(dist, 20_000, 42, 1);
        }
    }

    #[test]
    fn multi_threaded_across_distributions() {
        for dist in Distribution::paper_set() {
            check_with::<u32>(dist, 50_000, 42, 4);
        }
    }

    #[test]
    fn multi_threaded_key_types() {
        check_with::<i32>(Distribution::Uniform, 30_000, 1, 4);
        check_with::<f32>(Distribution::Normal, 30_000, 2, 4);
        check_with::<u64>(Distribution::Uniform, 30_000, 3, 4);
        check_with::<f64>(Distribution::Normal, 30_000, 4, 3);
    }

    #[test]
    fn duplicate_heavy_parallel() {
        check_with::<u32>(
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
            50_000,
            7,
            4,
        );
        check_with::<u32>(Distribution::Constant, 10_000, 7, 4);
    }

    #[test]
    fn edge_sizes() {
        check_with::<u32>(Distribution::Uniform, 0, 1, 4);
        check_with::<u32>(Distribution::Uniform, 1, 1, 4);
        check_with::<u32>(Distribution::Uniform, 63, 1, 4);
        check_with::<u32>(Distribution::Uniform, 65, 1, 4);
        check_with::<u32>(Distribution::Uniform, 4_099, 1, 4);
    }

    #[test]
    fn many_threads_small_input() {
        // More threads than sensible for the input size: stripes degenerate
        // to zero-length for some workers; must still sort.
        check_with::<u32>(Distribution::Uniform, 2_000, 9, 16);
    }

    #[test]
    fn default_config_sorts() {
        let input: Vec<u32> = generate(Distribution::Uniform, 10_000, 5);
        let mut sorted = input.clone();
        paradis_sort(&mut sorted);
        assert!(is_sorted(&sorted));
        assert!(same_multiset(&input, &sorted));
    }

    #[test]
    fn partition_invariant_holds() {
        let mut data: Vec<u32> = generate(Distribution::Uniform, 100_000, 13);
        let shift = 24;
        let bounds = parallel_partition(&mut data, shift, 4);
        for b in 0..BUCKETS {
            for &k in &data[bounds[b]..bounds[b + 1]] {
                assert_eq!(k.to_radix().digit(shift, DIGIT_BITS), b);
            }
        }
    }

    #[test]
    fn repair_bucket_compacts() {
        // Bucket 1 of an 8-bit digit at shift 0: values with low byte == 1.
        let mut data: Vec<u32> = vec![1, 513, 7, 1, 9, 257];
        let mut rem = Remainder { start: 0, end: 6 };
        let shared = SharedData::new(&mut data);
        // SAFETY: single-threaded test, exclusive access.
        unsafe { repair_bucket(shared, 0, 1, &mut rem) };
        // Four elements belong to bucket 1 (1, 513, 1, 257); two are misplaced.
        assert_eq!(rem.len(), 2);
        assert_eq!(rem.start, 4);
        for &k in &data[..4] {
            assert_eq!(k & 0xFF, 1);
        }
        for &k in &data[4..] {
            assert_ne!(k & 0xFF, 1);
        }
    }
}
