//! Recursive in-place most-significant-digit (MSB) radix sort.
//!
//! This is the algorithm family of Stehle & Jacobsen's GPU radix sort
//! (SIGMOD 2017), which the paper re-evaluates in its Table 2: partition by
//! the most significant digit first via in-place cycle-chasing permutation,
//! then recurse into each bucket on the next digit. Small buckets fall back
//! to a comparison sort on the radix image.
//!
//! The in-place permutation is the sequential (single stripe per bucket)
//! special case of the PARADIS permutation: because the element counts per
//! bucket are exact, the cycle chase never gets stuck and one pass fully
//! partitions the slice.

use crate::lsb_radix::{BUCKETS, DIGIT_BITS};
use msort_data::keys::{RadixImage, SortKey};

/// Buckets at or below this size are finished with a comparison sort.
const SMALL_SORT_THRESHOLD: usize = 128;

/// Sort `data` in place with a recursive MSB radix sort.
pub fn msb_radix_sort<K: SortKey>(data: &mut [K]) {
    if data.len() <= 1 {
        return;
    }
    let top_shift = K::Radix::BITS - DIGIT_BITS;
    msb_recurse(data, top_shift);
}

fn msb_recurse<K: SortKey>(data: &mut [K], shift: u32) {
    if data.len() <= SMALL_SORT_THRESHOLD {
        data.sort_unstable_by(|a, b| a.total_cmp_key(b));
        return;
    }

    let bounds = partition_in_place(data, shift);
    if shift == 0 {
        return;
    }
    let next_shift = shift - DIGIT_BITS;
    for b in 0..BUCKETS {
        let (lo, hi) = (bounds[b], bounds[b + 1]);
        if hi - lo > 1 {
            msb_recurse(&mut data[lo..hi], next_shift);
        }
    }
}

/// Partition `data` by the digit at `shift` using in-place cycle chasing.
/// Returns the `BUCKETS + 1` bucket boundary offsets.
pub(crate) fn partition_in_place<K: SortKey>(data: &mut [K], shift: u32) -> Vec<usize> {
    let mut hist = [0usize; BUCKETS];
    for key in data.iter() {
        hist[key.to_radix().digit(shift, DIGIT_BITS)] += 1;
    }

    let mut bounds = Vec::with_capacity(BUCKETS + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for &c in &hist {
        acc += c;
        bounds.push(acc);
    }

    // heads[b]: next unfilled position in bucket b; everything before it in
    // the bucket already holds keys with digit b.
    let mut heads: Vec<usize> = bounds[..BUCKETS].to_vec();
    let tails = &bounds[1..];

    for b in 0..BUCKETS {
        while heads[b] < tails[b] {
            let mut v = data[heads[b]];
            let mut d = v.to_radix().digit(shift, DIGIT_BITS);
            // Chase the cycle until an element belonging to bucket b lands
            // in the hole at heads[b]. Never gets stuck: counts are exact,
            // so a foreign element always has room in its home bucket.
            while d != b {
                std::mem::swap(&mut v, &mut data[heads[d]]);
                heads[d] += 1;
                d = v.to_radix().digit(shift, DIGIT_BITS);
            }
            data[heads[b]] = v;
            heads[b] += 1;
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check<K: SortKey>(dist: Distribution, n: usize, seed: u64) {
        let input: Vec<K> = generate(dist, n, seed);
        let mut sorted = input.clone();
        msb_radix_sort(&mut sorted);
        assert!(is_sorted(&sorted), "{dist:?} n={n} not sorted");
        assert!(same_multiset(&input, &sorted), "{dist:?} n={n} lost keys");
    }

    #[test]
    fn sorts_u32_across_distributions() {
        for dist in Distribution::paper_set() {
            check::<u32>(dist, 10_000, 11);
        }
    }

    #[test]
    fn sorts_all_key_types() {
        check::<i32>(Distribution::Uniform, 5_000, 1);
        check::<f32>(Distribution::Normal, 5_000, 2);
        check::<u64>(Distribution::Uniform, 5_000, 3);
        check::<f64>(Distribution::Normal, 5_000, 4);
    }

    #[test]
    fn edge_sizes() {
        check::<u32>(Distribution::Uniform, 0, 1);
        check::<u32>(Distribution::Uniform, 1, 1);
        check::<u32>(Distribution::Uniform, SMALL_SORT_THRESHOLD, 1);
        check::<u32>(Distribution::Uniform, SMALL_SORT_THRESHOLD + 1, 1);
    }

    #[test]
    fn duplicates_and_constant() {
        check::<u32>(
            Distribution::ZipfDuplicates {
                skew_permille: 2000,
            },
            20_000,
            5,
        );
        check::<u32>(Distribution::Constant, 5_000, 5);
    }

    #[test]
    fn partition_respects_digit_bounds() {
        let mut data: Vec<u32> = generate(Distribution::Uniform, 4_096, 9);
        let shift = 24;
        let bounds = partition_in_place(&mut data, shift);
        assert_eq!(bounds.len(), BUCKETS + 1);
        assert_eq!(bounds[BUCKETS], data.len());
        for b in 0..BUCKETS {
            for &k in &data[bounds[b]..bounds[b + 1]] {
                assert_eq!(k.to_radix().digit(shift, DIGIT_BITS), b);
            }
        }
    }
}
