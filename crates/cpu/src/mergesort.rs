//! Bottom-up merge sort with merge-path splitting.
//!
//! This is the algorithm family of the ModernGPU merge sort the paper
//! benchmarks in Table 2 (and loses to radix sort by 5.5×). Runs are doubled
//! bottom-up; each pairwise merge is split into equal-output-size segments by
//! the *merge path* diagonal search (Green, McColl & Bader, ICS 2012 — the
//! same primitive the paper cites for GPU merging), which is what makes the
//! algorithm massively parallel on a real GPU. Here the segments are merged
//! sequentially, but the diagonal search is real and separately tested
//! because the GPU runtime uses it for its merge primitive too.

use msort_data::SortKey;

/// Output segment size used when splitting merges along the merge path; on a
/// GPU this corresponds to the tile processed by one thread block.
const MERGE_SEGMENT: usize = 4096;

/// Sort `data` with bottom-up merge-path merge sort.
pub fn merge_path_sort<K: SortKey>(data: &mut [K]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut aux: Vec<K> = data.to_vec();
    let mut width = 1usize;
    let mut in_data = true;
    while width < n {
        {
            let (src, dst): (&[K], &mut [K]) = if in_data {
                (&*data, &mut aux[..])
            } else {
                (&aux, &mut *data)
            };
            let mut lo = 0usize;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                merge_into(&src[lo..mid], &src[mid..hi], &mut dst[lo..hi]);
                lo = hi;
            }
        }
        in_data = !in_data;
        width *= 2;
    }
    if !in_data {
        data.copy_from_slice(&aux);
    }
}

/// [`merge_path_sort`] parallelized over the shared worker pool: one
/// locally-sorted chunk per thread, then a parallel multiway merge into
/// `aux` (`aux.len() >= data.len()`) and a copy back.
///
/// Both phases are stable under the radix-image order, and the multiway
/// merge resolves ties by run index, so the output is identical to the
/// sequential [`merge_path_sort`] for every key type.
pub fn parallel_merge_path_sort<K: SortKey>(data: &mut [K], aux: &mut [K], threads: usize) {
    let n = data.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 1 << 14 {
        merge_path_sort(data);
        return;
    }
    let chunk_len = n.div_ceil(threads);
    crate::pool::scope(|scope| {
        for chunk in data.chunks_mut(chunk_len) {
            scope.spawn(move || merge_path_sort(chunk));
        }
    });
    let merged = &mut aux[..n];
    {
        let runs: Vec<&[K]> = data.chunks(chunk_len).collect();
        crate::multiway::parallel_multiway_merge_with(
            &runs,
            merged,
            crate::multiway::ParallelMergeConfig {
                threads,
                sequential_threshold: 0,
            },
        );
    }
    data.copy_from_slice(merged);
}

/// [`merge_into`] parallelized over the shared worker pool: the output is
/// split into one part per thread along merge-path diagonals; each worker
/// merges its disjoint input windows into its disjoint output part. The
/// diagonal split is stable (ties from `a`), so the output is identical to
/// the sequential merge.
pub fn parallel_merge_into<K: SortKey>(a: &[K], b: &[K], out: &mut [K], threads: usize) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let total = out.len();
    let threads = threads.max(1).min(total.max(1));
    if threads == 1 || total < 1 << 14 {
        merge_into(a, b, out);
        return;
    }
    crate::pool::scope(|scope| {
        let mut rest = out;
        let (mut ai, mut bi) = (0usize, 0usize);
        for t in 0..threads {
            let hi_d = (t + 1) * total / threads;
            let (na, nb) = merge_path_split(a, b, hi_d);
            let (part, tail) = rest.split_at_mut(hi_d - (ai + bi));
            rest = tail;
            let (pa, pb) = (&a[ai..na], &b[bi..nb]);
            scope.spawn(move || merge_into(pa, pb, part));
            ai = na;
            bi = nb;
        }
    });
}

/// Merge two sorted runs into `out`, splitting the output into
/// [`MERGE_SEGMENT`]-sized pieces along the merge path.
pub fn merge_into<K: SortKey>(a: &[K], b: &[K], out: &mut [K]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let total = out.len();
    let mut done = 0usize;
    let (mut ai, mut bi) = (0usize, 0usize);
    while done < total {
        let next = (done + MERGE_SEGMENT).min(total);
        let (na, nb) = merge_path_split(a, b, next);
        merge_segment(&a[ai..na], &b[bi..nb], &mut out[done..next]);
        ai = na;
        bi = nb;
        done = next;
    }
}

/// Find the merge-path split for output diagonal `d`: the pair `(i, j)` with
/// `i + j == d` such that merging `a[..i]` and `b[..j]` yields exactly the
/// first `d` output elements. Stable: ties take from `a` first.
#[must_use]
pub fn merge_path_split<K: SortKey>(a: &[K], b: &[K], d: usize) -> (usize, usize) {
    debug_assert!(d <= a.len() + b.len());
    // Binary search over i in [max(0, d - |b|), min(d, |a|)].
    let mut lo = d.saturating_sub(b.len());
    let mut hi = d.min(a.len());
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = d - i;
        // For a stable merge, a[i] goes before b[j-1] iff a[i] <= ... :
        // the split is valid when a[i-1] <= b[j] (a side ok) and
        // b[j-1] < a[i] (b side ok, strict for stability).
        if j > 0 && i < a.len() && b[j - 1].to_radix() >= a[i].to_radix() {
            // Too few elements taken from a (stability: ties come from a).
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    let i = lo;
    (i, d - i)
}

/// Branchless two-way merge of complete runs.
///
/// Inside the diagonal-partitioned window the selection is a conditional
/// move, not a branch: the comparison result drives both the value store
/// and the cursor advances as data, so a branch predictor facing
/// comparison-random keys (50% mispredict on uniform inputs) never stalls
/// the loop. There is no per-element bounds test either — the merge-path
/// split guarantees both runs are consumed exactly, so the loop runs while
/// both cursors are in range and the leftover run is bulk-copied.
fn merge_segment<K: SortKey>(a: &[K], b: &[K], out: &mut [K]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (na, nb) = (a.len(), b.len());
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < na && j < nb {
        // SAFETY: the loop condition guarantees i < na and j < nb, and
        // k = i + j < na + nb = out.len().
        unsafe {
            let av = *a.get_unchecked(i);
            let bv = *b.get_unchecked(j);
            // Ties take from `a` — the stability rule every split assumes.
            let take_a = av.to_radix() <= bv.to_radix();
            *out.get_unchecked_mut(k) = if take_a { av } else { bv };
            i += usize::from(take_a);
            j += usize::from(!take_a);
        }
        k += 1;
    }
    out[k..k + (na - i)].copy_from_slice(&a[i..]);
    out[k + (na - i)..].copy_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check<K: SortKey>(dist: Distribution, n: usize, seed: u64) {
        let input: Vec<K> = generate(dist, n, seed);
        let mut sorted = input.clone();
        merge_path_sort(&mut sorted);
        assert!(is_sorted(&sorted), "{dist:?} n={n} not sorted");
        assert!(same_multiset(&input, &sorted), "{dist:?} n={n} lost keys");
    }

    #[test]
    fn sorts_across_distributions() {
        for dist in Distribution::paper_set() {
            check::<u32>(dist, 10_000, 21);
        }
    }

    #[test]
    fn sorts_key_types_and_edges() {
        check::<f64>(Distribution::Normal, 3_000, 1);
        check::<i64>(Distribution::Uniform, 3_000, 2);
        check::<u32>(Distribution::Uniform, 0, 3);
        check::<u32>(Distribution::Uniform, 1, 3);
        check::<u32>(Distribution::Uniform, 2, 3);
        check::<u32>(Distribution::Uniform, MERGE_SEGMENT * 3 + 17, 3);
    }

    #[test]
    fn merge_path_split_properties() {
        let a: Vec<u32> = vec![1, 3, 5, 7, 9];
        let b: Vec<u32> = vec![2, 4, 6, 8];
        for d in 0..=a.len() + b.len() {
            let (i, j) = merge_path_split(&a, &b, d);
            assert_eq!(i + j, d);
            // Everything taken sorts at or before everything not taken.
            if i > 0 && j < b.len() {
                assert!(a[i - 1] <= b[j]);
            }
            if j > 0 && i < a.len() {
                assert!(b[j - 1] <= a[i]);
            }
        }
    }

    #[test]
    fn merge_path_split_duplicates_stable() {
        let a: Vec<u32> = vec![5, 5, 5];
        let b: Vec<u32> = vec![5, 5];
        // With all-equal keys and stability, splits take from `a` first.
        assert_eq!(merge_path_split(&a, &b, 2), (2, 0));
        assert_eq!(merge_path_split(&a, &b, 4), (3, 1));
    }

    #[test]
    fn parallel_merge_into_matches_sequential_exactly() {
        let mut a: Vec<u32> = generate(
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
            40_000,
            31,
        );
        let mut b: Vec<u32> = generate(
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
            25_000,
            32,
        );
        a.sort_unstable();
        b.sort_unstable();
        let mut seq = vec![0u32; a.len() + b.len()];
        let mut par = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut seq);
        parallel_merge_into(&a, &b, &mut par, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_merge_path_sort_matches_sequential_exactly() {
        for dist in Distribution::paper_set() {
            let input: Vec<u64> = generate(dist, 70_000, 33);
            let mut seq = input.clone();
            let mut par = input.clone();
            merge_path_sort(&mut seq);
            let mut aux = vec![0u64; par.len()];
            parallel_merge_path_sort(&mut par, &mut aux, 4);
            assert_eq!(seq, par, "{dist:?}");
        }
    }

    #[test]
    fn parallel_merge_small_inputs_take_sequential_path() {
        let a: Vec<u32> = vec![1, 4, 6];
        let b: Vec<u32> = vec![2, 3, 5];
        let mut out = vec![0u32; 6];
        parallel_merge_into(&a, &b, &mut out, 8);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        let mut data = vec![3u32, 1, 2];
        let mut aux = vec![0u32; 3];
        parallel_merge_path_sort(&mut data, &mut aux, 8);
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn merge_into_merges() {
        let a: Vec<u32> = (0..5000).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..5000).map(|x| x * 2 + 1).collect();
        let mut out = vec![0u32; 10_000];
        merge_into(&a, &b, &mut out);
        assert!(is_sorted(&out));
        assert_eq!(out[0], 0);
        assert_eq!(out[9999], 9999);
    }
}
