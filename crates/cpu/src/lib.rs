//! Real CPU sorting and merging algorithms.
//!
//! This crate implements, from scratch, every CPU primitive the paper's
//! evaluation depends on:
//!
//! * [`lsb_radix`] — out-of-place least-significant-digit radix sort, the
//!   algorithm family behind Thrust/CUB `sort` and the Polychroniou & Ross
//!   CPU LSB radix sort used as one of the paper's CPU baselines.
//! * [`onesweep`] — OneSweep-style single-pass radix sort (one global
//!   histogram pass over all digit positions, chained-lookback scatter,
//!   software write combining); the kernel the device-sort dispatch now
//!   routes Thrust/CUB-family sorts to.
//! * [`msb_radix`] — recursive in-place most-significant-digit radix sort,
//!   the family behind Stehle & Jacobsen's GPU sort.
//! * [`mergesort`] — bottom-up merge sort with a merge-path style
//!   equal-split merge, the family behind the ModernGPU merge sort.
//! * [`paradis`] — PARADIS (Cho et al., VLDB 2015): the parallel in-place
//!   radix sort the paper uses as the state-of-the-art CPU baseline.
//! * [`multiway`] — loser-tree k-way merging and a gnu_parallel-style
//!   parallel multiway merge via multisequence selection, used by HET sort's
//!   final CPU merge phase.
//! * [`sample`] — deterministic oversampled splitter selection and the
//!   stable bucket partition (counting scatter), the host kernels behind
//!   the GPU sample sort's local partition phase.
//! * [`parsort`] — a parallel comparison sort (chunked sort + parallel
//!   multiway merge), standing in for library primitives such as
//!   `gnu_parallel::sort` / TBB `parallel_sort`.
//! * [`pool`] — the shared worker pool every parallel algorithm above runs
//!   on: one set of lazily-spawned daemon threads per process instead of a
//!   `std::thread` spawn storm per call.
//!
//! All algorithms are generic over [`msort_data::SortKey`] and sort in the
//! key's total order (floats use the IEEE total-order bit transform). They
//! are functionally exercised by the test suite against `sort_unstable` as
//! ground truth and by property tests across distributions and key types.
//!
//! ```
//! use msort_cpu::paradis_sort;
//! let mut keys = vec![5u32, 3, 9, 1, 7];
//! paradis_sort(&mut keys);
//! assert_eq!(keys, vec![1, 3, 5, 7, 9]);
//! ```

pub mod lsb_radix;
pub mod mergesort;
pub mod msb_radix;
pub mod multiway;
pub mod onesweep;
pub mod par_lsb_radix;
pub mod paradis;
pub mod parsort;
pub mod pool;
pub mod sample;
pub mod stream;

pub use lsb_radix::lsb_radix_sort;
pub use mergesort::{merge_path_sort, parallel_merge_into, parallel_merge_path_sort};
pub use msb_radix::msb_radix_sort;
pub use multiway::{multiway_merge, parallel_multiway_merge, LoserTree};
pub use onesweep::{
    onesweep_sort, onesweep_sort_with_aux, parallel_onesweep_sort, parallel_onesweep_sort_with_aux,
};
pub use par_lsb_radix::{parallel_lsb_radix_sort, parallel_lsb_radix_sort_with_aux};
pub use paradis::{paradis_sort, ParadisConfig};
pub use parsort::parallel_sort;
pub use sample::{bucket_counts, bucket_of, partition_by_splitters, select_splitters, Splitter};

/// Number of worker threads to use for the parallel algorithms.
///
/// This is [`pool::threads`]: the machine's available parallelism, or the
/// `MSORT_POOL_THREADS` override. It is constant for the process lifetime,
/// so every chunking decision derived from it is reproducible run-to-run.
#[must_use]
pub fn default_threads() -> usize {
    pool::threads()
}
