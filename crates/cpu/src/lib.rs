//! Real CPU sorting and merging algorithms.
//!
//! This crate implements, from scratch, every CPU primitive the paper's
//! evaluation depends on:
//!
//! * [`lsb_radix`] — out-of-place least-significant-digit radix sort, the
//!   algorithm family behind Thrust/CUB `sort` and the Polychroniou & Ross
//!   CPU LSB radix sort used as one of the paper's CPU baselines.
//! * [`msb_radix`] — recursive in-place most-significant-digit radix sort,
//!   the family behind Stehle & Jacobsen's GPU sort.
//! * [`mergesort`] — bottom-up merge sort with a merge-path style
//!   equal-split merge, the family behind the ModernGPU merge sort.
//! * [`paradis`] — PARADIS (Cho et al., VLDB 2015): the parallel in-place
//!   radix sort the paper uses as the state-of-the-art CPU baseline.
//! * [`multiway`] — loser-tree k-way merging and a gnu_parallel-style
//!   parallel multiway merge via multisequence selection, used by HET sort's
//!   final CPU merge phase.
//! * [`parsort`] — a parallel comparison sort (chunked sort + parallel
//!   multiway merge), standing in for library primitives such as
//!   `gnu_parallel::sort` / TBB `parallel_sort`.
//!
//! All algorithms are generic over [`msort_data::SortKey`] and sort in the
//! key's total order (floats use the IEEE total-order bit transform). They
//! are functionally exercised by the test suite against `sort_unstable` as
//! ground truth and by property tests across distributions and key types.
//!
//! ```
//! use msort_cpu::paradis_sort;
//! let mut keys = vec![5u32, 3, 9, 1, 7];
//! paradis_sort(&mut keys);
//! assert_eq!(keys, vec![1, 3, 5, 7, 9]);
//! ```

pub mod lsb_radix;
pub mod mergesort;
pub mod msb_radix;
pub mod multiway;
pub mod par_lsb_radix;
pub mod paradis;
pub mod parsort;
pub mod stream;

pub use lsb_radix::lsb_radix_sort;
pub use mergesort::merge_path_sort;
pub use msb_radix::msb_radix_sort;
pub use multiway::{multiway_merge, parallel_multiway_merge, LoserTree};
pub use par_lsb_radix::parallel_lsb_radix_sort;
pub use paradis::{paradis_sort, ParadisConfig};
pub use parsort::parallel_sort;

/// Number of worker threads to use for the parallel algorithms.
///
/// Defaults to the machine's available parallelism; tests override it to
/// exercise multi-threaded code paths deterministically even on single-core
/// runners.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
