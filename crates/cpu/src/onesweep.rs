//! OneSweep-style single-pass radix sort.
//!
//! The classic parallel LSB radix sort ([`crate::par_lsb_radix`]) sweeps the
//! keys **twice per digit**: a histogram pass to size the per-thread output
//! regions, then the scatter itself — `2d` full reads for `d` digit passes.
//! OneSweep (Adinets & Merrill, "Onesweep: A Faster Least Significant Digit
//! Radix Sort for GPUs", the kernel family behind the GPUSorting exemplar
//! that beats CUB's `DeviceRadixSort`) removes the per-pass histogram sweep:
//!
//! * **one** global histogram pass up front computes the bucket totals of
//!   *every* digit position in a single scan (totals are permutation
//!   invariant, so they stay valid for all later passes);
//! * each digit pass is then a **single scatter sweep**: the input is cut
//!   into fixed-size tiles; a tile counts its own digits while its keys are
//!   cache resident, resolves its global write offsets by *chained prefix
//!   propagation* from its predecessor tile (the CPU analogue of decoupled
//!   lookback: publish local counts, acquire the running prefix of tile
//!   `t-1`, publish the inclusive prefix for tile `t+1`), and scatters
//!   straight from cache.
//!
//! Keys therefore stream from memory `1 + d` times instead of `2d`. Two
//! further single-thread wins over [`crate::lsb_radix`]:
//!
//! * **Wider digits.** 11-bit digits (2048 buckets) need 3 passes for
//!   32-bit keys and 6 for 64-bit keys, vs 4 and 8 at the classic 8-bit
//!   width — 25% fewer key reads *and* writes end to end. The histogram
//!   working set (6 × 16 KiB) still sits in L2.
//! * **Software write combining** (opt-in, `MSORT_WC_SCATTER=1`). A
//!   2048-bucket scatter touches 2048 distinct output cache lines (and, at
//!   large sizes, 2048 distinct TLB pages) in round-robin. Buffering
//!   [`WC_KEYS`] keys per bucket in a cache-resident staging block and
//!   flushing whole batches turns the random single-key stores into short
//!   streaming bursts, amortizing the cache-line and TLB misses across the
//!   batch. On virtualized hosts the staging copy costs more than it saves
//!   (measured numbers at [`wc_enabled`]), so the default is the plain
//!   scatter.
//!
//! Determinism: tiles have a **fixed** size (never derived from the thread
//! count), the scatter is stable (within a bucket, keys keep tile order and
//! in-tile order), and stable LSD radix output is unique — so the sequential
//! kernel, the parallel kernel, and [`crate::lsb_radix`] all produce
//! bit-identical outputs for every `MSORT_POOL_THREADS` setting. That is the
//! property the effect-executor determinism suite pins.

use msort_data::keys::{RadixImage, SortKey};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Digit width in bits. See the module docs for why 11 beats 8 here.
pub const RADIX_BITS: u32 = 11;

/// Number of buckets per digit pass.
pub const RADIX_BUCKETS: usize = 1 << RADIX_BITS;

/// Keys buffered per bucket before a write-combining flush. 16 keys is one
/// full cache line of `u32` (two of `u64`): large enough to amortize the
/// line/TLB miss of the flush target, small enough that the whole staging
/// block (2048 × 16 keys) stays cache resident.
const WC_KEYS: usize = 16;

/// Whether the scatter should stage stores through the software
/// write-combining block ([`scatter_wc`]) instead of storing keys directly
/// ([`scatter_plain`]).
///
/// Measured on the reference 1-core CI container (release, 32M uniform
/// `u32`): plain scatter 635 ms vs write-combined 856 ms — the staging
/// copy roughly doubles store traffic, and under virtualized (EPT) paging
/// the TLB-miss cost it amortizes on bare metal never materializes, so WC
/// *loses* 35% there and at every size down to 8M (273 ms vs 190 ms at
/// 8-bit digits). Default is therefore off; set `MSORT_WC_SCATTER=1` on
/// bare-metal hosts with real TLB pressure (2048 scatter streams × 4 KiB
/// pages exceed any L2 DTLB once the output no longer fits). The choice
/// never affects output bytes — both scatters are stable — only wall
/// clock, so flipping it cannot break serial-vs-pool bit-identity.
fn wc_enabled() -> bool {
    use std::sync::OnceLock;
    static WC: OnceLock<bool> = OnceLock::new();
    *WC.get_or_init(|| std::env::var_os("MSORT_WC_SCATTER").is_some_and(|v| v == "1"))
}

/// Tile size (in keys) of the chained-lookback scatter. Constant — never a
/// function of the thread count — so the output-position assignment is
/// identical for every pool width. 32 Ki keys keep a tile (plus its
/// write-combining block and two 16 KiB count tables) L2 resident between
/// the count and the scatter, and put two tiles — the minimum that can
/// overlap — exactly at the device dispatch floor
/// (`msort_gpu::primitives::PARALLEL_MIN_KEYS`, 64 Ki).
const TILE: usize = 1 << 15;

/// Below this many keys (= two tiles) the parallel entry point falls back
/// to the sequential kernel: a single tile has no scatter overlap to win
/// and would pay the lookback state setup for nothing.
const PARALLEL_FLOOR: usize = 2 * TILE;

/// Number of digit passes needed to cover `R::BITS` at [`RADIX_BITS`] per
/// pass (the last pass covers the remaining high bits).
#[must_use]
fn pass_count<R: RadixImage>() -> usize {
    R::BITS.div_ceil(RADIX_BITS) as usize
}

/// Sort `data` in place with the sequential OneSweep kernel, allocating the
/// auxiliary buffer internally.
pub fn onesweep_sort<K: SortKey>(data: &mut [K]) {
    if data.len() <= 1 {
        return;
    }
    let mut aux = vec![data[0]; data.len()];
    onesweep_sort_with_aux(data, &mut aux);
}

/// Sort `data` in place with the sequential OneSweep kernel using a
/// caller-provided auxiliary buffer (`aux.len() >= data.len()`).
///
/// # Panics
/// Panics if `aux.len() < data.len()`.
pub fn onesweep_sort_with_aux<K: SortKey>(data: &mut [K], aux: &mut [K]) {
    onesweep_sort_with_aux_impl(data, aux, wc_enabled());
}

/// [`onesweep_sort_with_aux`] with the write-combining decision explicit,
/// so tests can pin both scatter paths regardless of the environment.
fn onesweep_sort_with_aux_impl<K: SortKey>(data: &mut [K], aux: &mut [K], use_wc: bool) {
    let n = data.len();
    assert!(
        aux.len() >= n,
        "auxiliary buffer must cover the input length"
    );
    if n <= 1 {
        return;
    }
    let aux = &mut aux[..n];

    // One global histogram pass: bucket totals of every digit position.
    let passes = pass_count::<K::Radix>();
    let mut hists = vec![vec![0usize; RADIX_BUCKETS]; passes];
    scan_all_digits(data, &mut hists);

    let mut wc = use_wc.then(|| WcBlock::new(data[0]));
    let mut offsets = vec![0usize; RADIX_BUCKETS];
    let mut in_data = true;
    for (p, hist) in hists.iter().enumerate() {
        // A pass whose digit is constant across the input moves nothing.
        if hist.contains(&n) {
            continue;
        }
        let shift = p as u32 * RADIX_BITS;
        exclusive_scan(hist, &mut offsets);
        let (src, dst): (&[K], SendPtr<K>) = if in_data {
            (&*data, SendPtr(aux.as_mut_ptr()))
        } else {
            (&*aux, SendPtr(data.as_mut_ptr()))
        };
        // SAFETY: `offsets` is the exclusive scan of the full bucket totals
        // for this pass, so every key scatters to a unique in-bounds slot of
        // the opposite ping-pong buffer.
        match &mut wc {
            Some(wc) => unsafe { scatter_wc(src, dst, shift, &mut offsets, wc) },
            None => unsafe { scatter_plain(src, dst, shift, &mut offsets) },
        }
        in_data = !in_data;
    }
    if !in_data {
        data.copy_from_slice(aux);
    }
}

/// Sort `data` in place with the parallel OneSweep kernel: `threads` pool
/// workers pull fixed-size tiles off a shared ticket and resolve their
/// scatter offsets by chained prefix propagation. Falls back to
/// [`onesweep_sort_with_aux`] below the parallel floor; the output is
/// bit-identical either way.
pub fn parallel_onesweep_sort<K: SortKey>(data: &mut [K], threads: usize) {
    if data.len() <= 1 {
        return;
    }
    let mut aux = vec![data[0]; data.len()];
    parallel_onesweep_sort_with_aux(data, &mut aux, threads);
}

/// [`parallel_onesweep_sort`] with a caller-provided auxiliary buffer
/// (`aux.len() >= data.len()`), so the GPU runtime's device-style scratch
/// allocations are reused instead of reallocated.
///
/// # Panics
/// Panics if `aux.len() < data.len()`.
pub fn parallel_onesweep_sort_with_aux<K: SortKey>(data: &mut [K], aux: &mut [K], threads: usize) {
    parallel_onesweep_sort_with_aux_impl(data, aux, threads, wc_enabled());
}

/// [`parallel_onesweep_sort_with_aux`] with the write-combining decision
/// explicit, so tests can pin both scatter paths regardless of the
/// environment.
fn parallel_onesweep_sort_with_aux_impl<K: SortKey>(
    data: &mut [K],
    aux: &mut [K],
    threads: usize,
    use_wc: bool,
) {
    let n = data.len();
    assert!(
        aux.len() >= n,
        "auxiliary buffer must cover the input length"
    );
    let threads = threads.max(1).min(n.max(1));
    if n <= 1 {
        return;
    }
    let aux = &mut aux[..n];
    if threads == 1 || n < PARALLEL_FLOOR {
        onesweep_sort_with_aux_impl(data, aux, use_wc);
        return;
    }

    // Global histogram pass, parallel over stripes. Totals are stripe-order
    // independent, but the reduction still runs in fixed stripe order.
    let passes = pass_count::<K::Radix>();
    let stripe = n.div_ceil(threads);
    let mut stripe_hists: Vec<Vec<usize>> =
        vec![vec![0usize; passes * RADIX_BUCKETS]; n.div_ceil(stripe)];
    crate::pool::scope(|scope| {
        for (chunk, hist) in data.chunks(stripe).zip(stripe_hists.iter_mut()) {
            scope.spawn(move || {
                for key in chunk {
                    let img = key.to_radix();
                    for p in 0..passes {
                        hist[p * RADIX_BUCKETS + img.digit(p as u32 * RADIX_BITS, RADIX_BITS)] += 1;
                    }
                }
            });
        }
    });
    let mut hists = vec![vec![0usize; RADIX_BUCKETS]; passes];
    for sh in &stripe_hists {
        for (p, hist) in hists.iter_mut().enumerate() {
            for (t, &c) in hist.iter_mut().zip(&sh[p * RADIX_BUCKETS..]) {
                *t += c;
            }
        }
    }

    // Chained-lookback state, reused across passes. `counts[t * B + b]` is
    // the *inclusive* prefix (tiles 0..=t) of bucket b once `done[t]` is
    // set; tile counts fit u32 because TILE < 2^32.
    let tiles = n.div_ceil(TILE);
    let counts: Vec<AtomicU32> = (0..tiles * RADIX_BUCKETS)
        .map(|_| AtomicU32::new(0))
        .collect();
    let done: Vec<AtomicU32> = (0..tiles).map(|_| AtomicU32::new(0)).collect();
    let ticket = AtomicUsize::new(0);

    let mut bases = vec![0usize; RADIX_BUCKETS];
    let mut in_data = true;
    for (p, hist) in hists.iter().enumerate() {
        if hist.contains(&n) {
            continue;
        }
        let shift = p as u32 * RADIX_BITS;
        exclusive_scan(hist, &mut bases);
        for d in &done {
            d.store(0, Ordering::Relaxed);
        }
        ticket.store(0, Ordering::Relaxed);

        let (src, dst): (&[K], SendPtr<K>) = if in_data {
            // SAFETY: `data` and `aux` are distinct allocations of length n;
            // the raw-derived views only erase the ping-pong borrow.
            (
                unsafe { std::slice::from_raw_parts(data.as_ptr(), n) },
                SendPtr(aux.as_mut_ptr()),
            )
        } else {
            (
                unsafe { std::slice::from_raw_parts(aux.as_ptr(), n) },
                SendPtr(data.as_mut_ptr()),
            )
        };

        let workers = threads.min(tiles);
        crate::pool::scope(|scope| {
            for _ in 0..workers {
                let (counts, done, ticket, bases) = (&counts, &done, &ticket, &bases);
                scope.spawn(move || {
                    let mut local = vec![0u32; RADIX_BUCKETS];
                    let mut offsets = vec![0usize; RADIX_BUCKETS];
                    let mut wc = use_wc.then(|| WcBlock::new(src[0]));
                    loop {
                        let t = ticket.fetch_add(1, Ordering::Relaxed);
                        if t >= tiles {
                            break;
                        }
                        let tile = &src[t * TILE..((t + 1) * TILE).min(n)];
                        // Count this tile's digits (the tile is now cache
                        // resident for the scatter below).
                        local.iter_mut().for_each(|c| *c = 0);
                        for key in tile {
                            local[key.to_radix().digit(shift, RADIX_BITS)] += 1;
                        }
                        // Chained prefix resolution: acquire the inclusive
                        // prefix of tile t-1, publish ours for tile t+1.
                        // Progress is guaranteed because tickets are issued
                        // in tile order: tile t-1 is always already running
                        // on some worker when tile t waits for it.
                        if t > 0 {
                            let mut spins = 0u32;
                            while done[t - 1].load(Ordering::Acquire) == 0 {
                                spins += 1;
                                if spins < 1 << 10 {
                                    std::hint::spin_loop();
                                } else {
                                    std::thread::yield_now();
                                }
                            }
                        }
                        let prev =
                            (t > 0).then(|| &counts[(t - 1) * RADIX_BUCKETS..t * RADIX_BUCKETS]);
                        let own = &counts[t * RADIX_BUCKETS..(t + 1) * RADIX_BUCKETS];
                        for (b, (own_c, &loc)) in own.iter().zip(&local).enumerate() {
                            let excl = prev.map_or(0, |pc| pc[b].load(Ordering::Relaxed));
                            own_c.store(excl + loc, Ordering::Relaxed);
                            offsets[b] = bases[b] + excl as usize;
                        }
                        done[t].store(1, Ordering::Release);
                        // SAFETY: [bases[b] + excl[b], bases[b] + incl[b])
                        // ranges are pairwise disjoint across (tile, bucket)
                        // pairs by the prefix construction and in bounds of
                        // the length-n destination.
                        match &mut wc {
                            Some(wc) => unsafe {
                                scatter_wc(tile, dst, shift, &mut offsets, wc);
                            },
                            None => unsafe {
                                scatter_plain(tile, dst, shift, &mut offsets);
                            },
                        }
                    }
                });
            }
        });
        in_data = !in_data;
    }
    if !in_data {
        data.copy_from_slice(aux);
    }
}

/// Fill one histogram per digit pass in a single scan over `data`.
fn scan_all_digits<K: SortKey>(data: &[K], hists: &mut [Vec<usize>]) {
    for key in data {
        let img = key.to_radix();
        for (p, hist) in hists.iter_mut().enumerate() {
            hist[img.digit(p as u32 * RADIX_BITS, RADIX_BITS)] += 1;
        }
    }
}

/// Exclusive prefix scan of `hist` into `out`.
fn exclusive_scan(hist: &[usize], out: &mut [usize]) {
    let mut acc = 0usize;
    for (o, &c) in out.iter_mut().zip(hist) {
        *o = acc;
        acc += c;
    }
}

/// Software write-combining staging block: [`WC_KEYS`] key slots per bucket
/// plus a fill counter per bucket.
struct WcBlock<K> {
    slots: Vec<K>,
    fill: Vec<u32>,
}

impl<K: Copy> WcBlock<K> {
    fn new(init: K) -> Self {
        Self {
            slots: vec![init; RADIX_BUCKETS * WC_KEYS],
            fill: vec![0u32; RADIX_BUCKETS],
        }
    }
}

/// Scatter `src` into `dst` through the write-combining block. `offsets[d]`
/// must be the absolute destination index of the next key with digit `d`;
/// on return all buffered keys are drained and `offsets` is advanced.
///
/// # Safety
/// For every key, the destination slot `offsets[digit]` (as advanced by the
/// scatter) must be in bounds of `dst` and not written by anyone else.
unsafe fn scatter_wc<K: SortKey>(
    src: &[K],
    dst: SendPtr<K>,
    shift: u32,
    offsets: &mut [usize],
    wc: &mut WcBlock<K>,
) {
    for &key in src {
        let d = key.to_radix().digit(shift, RADIX_BITS);
        // SAFETY: d < RADIX_BUCKETS by the digit mask; fill[d] < WC_KEYS is
        // restored below whenever a batch completes.
        unsafe {
            let f = *wc.fill.get_unchecked(d);
            *wc.slots.get_unchecked_mut(d * WC_KEYS + f as usize) = key;
            *wc.fill.get_unchecked_mut(d) = f + 1;
            if f as usize + 1 == WC_KEYS {
                let base = *offsets.get_unchecked(d);
                std::ptr::copy_nonoverlapping(
                    wc.slots.as_ptr().add(d * WC_KEYS),
                    dst.0.add(base),
                    WC_KEYS,
                );
                *offsets.get_unchecked_mut(d) = base + WC_KEYS;
                *wc.fill.get_unchecked_mut(d) = 0;
            }
        }
    }
    // Drain partial batches in bucket order (keys stay in arrival order per
    // bucket, so stability is preserved).
    for (d, fill) in wc.fill.iter_mut().enumerate() {
        let f = *fill as usize;
        if f > 0 {
            // SAFETY: same disjoint-region argument as the batch flush.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    wc.slots.as_ptr().add(d * WC_KEYS),
                    dst.0.add(offsets[d]),
                    f,
                );
            }
            offsets[d] += f;
            *fill = 0;
        }
    }
}

/// Plain one-key-at-a-time scatter for inputs too small to benefit from
/// write combining.
///
/// # Safety
/// Same contract as [`scatter_wc`].
unsafe fn scatter_plain<K: SortKey>(src: &[K], dst: SendPtr<K>, shift: u32, offsets: &mut [usize]) {
    for &key in src {
        let d = key.to_radix().digit(shift, RADIX_BITS);
        // SAFETY: per the function contract the slot is in bounds and
        // exclusively ours.
        unsafe { dst.write(offsets[d], key) };
        offsets[d] += 1;
    }
}

/// `Send` raw-pointer wrapper for disjoint-region scatters. Accessed only
/// through [`SendPtr::write`] / explicit `copy_nonoverlapping` so closures
/// capture the wrapper, not the raw pointer (edition-2021 closures capture
/// individual fields). Shared with [`crate::par_lsb_radix`].
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

// SAFETY: dereferences are guarded by region disjointness at the use site.
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T: Copy> SendPtr<T> {
    /// # Safety
    /// `i` must be in bounds and no other thread may write slot `i`.
    #[inline]
    pub(crate) unsafe fn write(self, i: usize, v: T) {
        unsafe { self.0.add(i).write(v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check<K: SortKey + PartialEq>(dist: Distribution, n: usize, seed: u64) {
        let input: Vec<K> = generate(dist, n, seed);
        let mut seq = input.clone();
        onesweep_sort(&mut seq);
        assert!(is_sorted(&seq), "{dist:?} n={n} not sorted");
        assert!(same_multiset(&input, &seq), "{dist:?} n={n} lost keys");
        for threads in [2usize, 4] {
            let mut par = input.clone();
            parallel_onesweep_sort(&mut par, threads);
            assert_eq!(par, seq, "{dist:?} n={n} threads={threads} differs");
        }
    }

    #[test]
    fn sorts_across_distributions() {
        for dist in Distribution::paper_set() {
            check::<u32>(dist, 50_000, 42);
        }
    }

    #[test]
    fn sorts_all_key_types() {
        check::<u32>(Distribution::Uniform, 20_000, 1);
        check::<i32>(Distribution::Uniform, 20_000, 2);
        check::<f32>(Distribution::Normal, 20_000, 3);
        check::<u64>(Distribution::Uniform, 20_000, 4);
        check::<i64>(Distribution::Uniform, 20_000, 5);
        check::<f64>(Distribution::Normal, 20_000, 6);
    }

    #[test]
    fn handles_edge_sizes() {
        for n in [0, 1, 2, 255, 256, 257, PARALLEL_FLOOR - 1, PARALLEL_FLOOR] {
            check::<u32>(Distribution::Uniform, n, 7);
        }
    }

    #[test]
    fn tile_boundaries_exercised() {
        // Straddle one and two tile boundaries so the lookback chain runs.
        check::<u32>(Distribution::Uniform, TILE + 123, 8);
        check::<u64>(Distribution::Uniform, 2 * TILE + 45, 9);
    }

    #[test]
    fn matches_lsb_radix_exactly() {
        // Stable LSD radix output is unique: OneSweep must agree with the
        // 8-bit LSB kernel bit for bit despite the different digit width.
        for dist in [
            Distribution::Uniform,
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
        ] {
            let input: Vec<u64> = generate(dist, 150_000, 10);
            let mut a = input.clone();
            let mut b = input;
            onesweep_sort(&mut a);
            crate::lsb_radix::lsb_radix_sort(&mut b);
            assert_eq!(a, b, "{dist:?}");
        }
    }

    #[test]
    fn constant_input_skips_all_passes() {
        check::<u32>(Distribution::Constant, 10_000, 11);
        check::<u64>(Distribution::Constant, 200_000, 12);
    }

    #[test]
    fn narrow_range_skips_high_passes() {
        let mut v: Vec<u32> = (0..100_000u32).map(|i| (i * 7) % 1024).collect();
        let orig = v.clone();
        parallel_onesweep_sort(&mut v, 4);
        assert!(is_sorted(&v));
        assert!(same_multiset(&orig, &v));
    }

    #[test]
    fn with_aux_accepts_oversized_scratch() {
        let input: Vec<u32> = generate(Distribution::Uniform, 30_000, 13);
        let mut a = input.clone();
        let mut b = input;
        let mut aux = vec![0u32; a.len() + 77];
        parallel_onesweep_sort_with_aux(&mut a, &mut aux, 4);
        parallel_onesweep_sort(&mut b, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "auxiliary buffer")]
    fn short_aux_panics() {
        let mut d = [3u32, 1, 2];
        let mut aux = [0u32; 2];
        onesweep_sort_with_aux(&mut d, &mut aux);
    }

    #[test]
    fn more_threads_than_tiles() {
        check::<u32>(Distribution::Uniform, PARALLEL_FLOOR + 17, 14);
    }

    #[test]
    fn write_combining_path_bit_identical() {
        // Both scatter paths are stable, so the WC decision must never
        // change a single output byte — sequential and parallel, at a size
        // that spans multiple tiles and drains partial WC batches.
        for n in [5_000usize, TILE + 999] {
            let input: Vec<u64> = generate(
                Distribution::ZipfDuplicates {
                    skew_permille: 1200,
                },
                n,
                15,
            );
            let mut plain = input.clone();
            let mut wc = input.clone();
            let mut aux = vec![0u64; n];
            onesweep_sort_with_aux_impl(&mut plain, &mut aux, false);
            onesweep_sort_with_aux_impl(&mut wc, &mut aux, true);
            assert_eq!(plain, wc, "sequential WC path differs at n={n}");
            let mut par_wc = input.clone();
            parallel_onesweep_sort_with_aux_impl(&mut par_wc, &mut aux, 4, true);
            assert_eq!(plain, par_wc, "parallel WC path differs at n={n}");
        }
    }
}
