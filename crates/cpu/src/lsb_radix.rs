//! Out-of-place least-significant-digit (LSB) radix sort.
//!
//! This is the algorithm family used by Thrust/CUB `sort` on GPUs and by the
//! Polychroniou & Ross CPU LSB radix sort the paper evaluates as a baseline.
//! It processes the key's radix image in fixed-width digit passes from least
//! to most significant; each pass performs a stable counting-sort scatter
//! into an auxiliary buffer. All per-pass histograms are computed in a single
//! initial scan, and passes whose digit is constant across the input are
//! skipped entirely — the same trick that lets real radix sorts adapt to
//! narrow key ranges.

use msort_data::keys::{RadixImage, SortKey};

/// Digit width in bits. 8 bits (256 buckets) is the sweet spot for cache-
/// resident histograms and matches the classic CPU implementations.
pub const DIGIT_BITS: u32 = 8;

/// Number of buckets per pass.
pub const BUCKETS: usize = 1 << DIGIT_BITS;

/// Sort `data` in place using LSB radix sort with a caller-provided auxiliary
/// buffer of the same length (mirrors `thrust::sort`'s pre-allocated
/// temporary storage; Section 5.1 of the paper stresses avoiding dynamic
/// allocation in the hot path).
///
/// # Panics
/// Panics if `aux.len() != data.len()`.
pub fn lsb_radix_sort_with_aux<K: SortKey>(data: &mut [K], aux: &mut [K]) {
    assert_eq!(
        data.len(),
        aux.len(),
        "auxiliary buffer must match input length"
    );
    if data.len() <= 1 {
        return;
    }

    let passes = (K::Radix::BITS / DIGIT_BITS) as usize;
    // One histogram per pass, all filled in a single scan over the input.
    let mut hists = vec![[0usize; BUCKETS]; passes];
    for key in data.iter() {
        let img = key.to_radix();
        for (p, hist) in hists.iter_mut().enumerate() {
            hist[img.digit(p as u32 * DIGIT_BITS, DIGIT_BITS)] += 1;
        }
    }

    // Ping-pong between `data` and `aux`; track which buffer currently holds
    // the keys so we can skip trivial passes without copying.
    let mut in_data = true;
    for (p, hist) in hists.iter().enumerate() {
        let shift = p as u32 * DIGIT_BITS;
        // A pass is trivial when one bucket holds everything.
        if hist.contains(&data.len()) {
            continue;
        }
        let mut offsets = [0usize; BUCKETS];
        let mut acc = 0usize;
        for (o, &c) in offsets.iter_mut().zip(hist.iter()) {
            *o = acc;
            acc += c;
        }
        let (src, dst): (&mut [K], &mut [K]) = if in_data { (data, aux) } else { (aux, data) };
        for &key in src.iter() {
            let d = key.to_radix().digit(shift, DIGIT_BITS);
            dst[offsets[d]] = key;
            offsets[d] += 1;
        }
        in_data = !in_data;
    }

    if !in_data {
        data.copy_from_slice(aux);
    }
}

/// Sort `data` in place using LSB radix sort, allocating the auxiliary
/// buffer internally.
pub fn lsb_radix_sort<K: SortKey>(data: &mut [K]) {
    if data.len() <= 1 {
        return;
    }
    let mut aux = vec![data[0]; data.len()];
    lsb_radix_sort_with_aux(data, &mut aux);
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check<K: SortKey>(dist: Distribution, n: usize, seed: u64) {
        let input: Vec<K> = generate(dist, n, seed);
        let mut sorted = input.clone();
        lsb_radix_sort(&mut sorted);
        assert!(is_sorted(&sorted), "{dist:?} n={n} not sorted");
        assert!(same_multiset(&input, &sorted), "{dist:?} n={n} lost keys");
    }

    #[test]
    fn sorts_u32_across_distributions() {
        for dist in Distribution::paper_set() {
            check::<u32>(dist, 10_000, 42);
        }
    }

    #[test]
    fn sorts_all_key_types() {
        check::<u32>(Distribution::Uniform, 5_000, 1);
        check::<i32>(Distribution::Uniform, 5_000, 2);
        check::<f32>(Distribution::Normal, 5_000, 3);
        check::<u64>(Distribution::Uniform, 5_000, 4);
        check::<i64>(Distribution::Uniform, 5_000, 5);
        check::<f64>(Distribution::Normal, 5_000, 6);
    }

    #[test]
    fn handles_edge_sizes() {
        check::<u32>(Distribution::Uniform, 0, 1);
        check::<u32>(Distribution::Uniform, 1, 1);
        check::<u32>(Distribution::Uniform, 2, 1);
        check::<u32>(Distribution::Uniform, 255, 1);
        check::<u32>(Distribution::Uniform, 256, 1);
        check::<u32>(Distribution::Uniform, 257, 1);
    }

    #[test]
    fn constant_input_skips_all_passes() {
        check::<u32>(Distribution::Constant, 1_000, 1);
        check::<u64>(Distribution::Constant, 1_000, 1);
    }

    #[test]
    fn duplicate_heavy_input() {
        check::<u32>(
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
            20_000,
            7,
        );
    }

    #[test]
    fn narrow_range_skips_high_passes() {
        // Keys fit in one byte: three of four passes are trivial.
        let mut v: Vec<u32> = (0..1000u32).map(|i| (i * 7) % 256).collect();
        let orig = v.clone();
        lsb_radix_sort(&mut v);
        assert!(is_sorted(&v));
        assert!(same_multiset(&orig, &v));
    }

    #[test]
    #[should_panic(expected = "auxiliary buffer")]
    fn mismatched_aux_panics() {
        let mut d = [3u32, 1, 2];
        let mut aux = [0u32; 2];
        lsb_radix_sort_with_aux(&mut d, &mut aux);
    }
}
