//! The shared worker pool behind every parallel algorithm in the workspace.
//!
//! The parallel kernels ([`crate::parsort`], [`crate::par_lsb_radix`],
//! [`crate::paradis`], [`crate::multiway`]) used to call
//! `std::thread::scope` on every invocation. A simulated sort applies
//! thousands of data effects, each of which may fan out into worker
//! threads — at ~100 µs per `std::thread` spawn+join cycle the spawn storm
//! itself becomes a measurable wall-clock cost, and the OS sees an endless
//! churn of short-lived threads. This module replaces that with one
//! process-wide pool of daemon workers, spawned lazily on first use:
//!
//! * [`scope`] is a drop-in replacement for `std::thread::scope`: closures
//!   may borrow from the caller's stack, every spawned task is guaranteed
//!   to finish before `scope` returns, and a panicking task resurfaces as a
//!   panic in the caller (first panic wins, like `std::thread::scope`).
//! * [`spawn`] submits a detached `'static` task (used by the GPU runtime's
//!   deferred effect executor).
//! * [`threads`] is the worker budget parallel algorithms should chunk by:
//!   the machine's available parallelism, overridable with the
//!   `MSORT_POOL_THREADS` environment variable so CI can force
//!   multi-threaded execution on single-core runners (and single-threaded
//!   execution anywhere).
//!
//! # Deadlock freedom
//!
//! The pool spawns `threads() - 1` workers (the calling thread is the
//! n-th). A thread waiting in [`scope`] *helps*: while its own tasks are
//! unfinished it pops and runs queued tasks — anyone's — instead of
//! blocking. Nested scopes (a pooled task that itself calls [`scope`], as
//! PARADIS' bucket recursion does) therefore always make progress, even
//! with zero workers: the scoping thread runs its own queue dry before
//! sleeping, and only sleeps when every remaining task of its scope is
//! running on some other thread.
//!
//! Tasks never block on other tasks (kernels only join via [`scope`],
//! which helps), so helping cannot self-deadlock.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Queue + wakeup shared by workers and helping waiters.
struct Shared {
    queue: Mutex<VecDeque<Task>>,
    /// Notified on task push *and* on scope-task completion (completions
    /// wake helping waiters whose predicate lives outside the mutex).
    cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Worker budget for parallel algorithms: `MSORT_POOL_THREADS` if set (and
/// ≥ 1), otherwise the machine's available parallelism. Constant for the
/// process lifetime, so chunking decisions derived from it are
/// deterministic run-to-run.
#[must_use]
pub fn threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("MSORT_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        // The calling thread participates via helping waits, so n threads
        // of parallelism need n - 1 workers. Workers are daemon threads:
        // they hold only the Arc and die with the process.
        for i in 0..threads().saturating_sub(1) {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("msort-pool-{i}"))
                .spawn(move || worker_loop(&s))
                .expect("spawn pool worker");
        }
        Pool { shared }
    })
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("pool mutex");
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = shared.cv.wait(q).expect("pool mutex");
            }
        };
        // Tasks are panic-wrapped at submission ([`scope`] stores the
        // payload, [`spawn`] documents the requirement); a stray unwind
        // would otherwise silently kill the worker.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

/// Submit a detached task. The task must not panic (wrap fallible work in
/// `catch_unwind`); a panic is swallowed by the worker.
pub fn spawn(f: impl FnOnce() + Send + 'static) {
    let p = pool();
    p.shared
        .queue
        .lock()
        .expect("pool mutex")
        .push_back(Box::new(f));
    p.shared.cv.notify_one();
}

/// Pop and run one queued task on the calling thread. Returns `false` when
/// the queue was empty. Lets executors outside this crate help the pool
/// while they wait (the same mechanism [`scope`] uses internally).
pub fn try_help() -> bool {
    let p = pool();
    let task = p.shared.queue.lock().expect("pool mutex").pop_front();
    match task {
        Some(t) => {
            t();
            true
        }
        None => false,
    }
}

/// Per-scope completion state.
struct ScopeState {
    /// Tasks spawned and not yet finished.
    pending: AtomicUsize,
    /// First panic payload from a task of this scope.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// Handle passed to the [`scope`] closure; spawns borrowing tasks.
pub struct Scope<'scope, 'env: 'scope> {
    shared: &'static Shared,
    state: Arc<ScopeState>,
    /// Invariant lifetimes, exactly like `std::thread::Scope`.
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `f` on the pool. `f` may borrow from the environment of the
    /// enclosing [`scope`] call; it is guaranteed to finish before that
    /// call returns.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `scope` joins every spawned task (even when the scope
        // closure panics) before returning, so the task never outlives
        // 'env; the transmute only erases that lifetime.
        let boxed: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(boxed)
        };
        let state = Arc::clone(&self.state);
        let shared = self.shared;
        let task: Task = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(boxed)) {
                state
                    .panic
                    .lock()
                    .expect("scope panic slot")
                    .get_or_insert(payload);
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
            // Serialize with waiters: acquiring the queue mutex before
            // notifying guarantees a waiter that saw pending > 0 is already
            // parked in `cv.wait` (it checks under the same mutex).
            drop(shared.queue.lock().expect("pool mutex"));
            shared.cv.notify_all();
        });
        self.shared
            .queue
            .lock()
            .expect("pool mutex")
            .push_back(task);
        self.shared.cv.notify_one();
    }
}

/// Pooled equivalent of `std::thread::scope`: tasks spawned on the scope
/// may borrow from the caller and are joined before this returns. The
/// calling thread helps run queued tasks while it waits. If any task
/// panicked, the first payload is resumed here (after all tasks finished);
/// a panic in `f` itself also waits for spawned tasks first.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    let p = pool();
    let sc = Scope {
        shared: &p.shared,
        state: Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }),
        scope_marker: PhantomData,
        env_marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
    // Join: help with queued work, sleep only when everything left is
    // already running elsewhere. Must complete even if `f` panicked —
    // spawned tasks borrow 'env.
    {
        let shared = sc.shared;
        let mut q = shared.queue.lock().expect("pool mutex");
        while sc.state.pending.load(Ordering::Acquire) != 0 {
            if let Some(task) = q.pop_front() {
                drop(q);
                task();
                q = shared.queue.lock().expect("pool mutex");
            } else {
                q = shared.cv.wait(q).expect("pool mutex");
            }
        }
    }
    let panic = sc.state.panic.lock().expect("scope panic slot").take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = panic {
                resume_unwind(payload);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_tasks_and_joins() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for i in 0..64u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (0..64).sum::<u64>());
    }

    #[test]
    fn scope_tasks_borrow_and_mutate_disjoint_slices() {
        let mut data = vec![0u32; 1000];
        let chunk = 100;
        scope(|s| {
            for (i, part) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    for v in part {
                        *v = i as u32;
                    }
                });
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / chunk) as u32);
        }
    }

    #[test]
    fn nested_scopes_complete() {
        // A pooled task that itself opens a scope: helping makes this
        // progress even when every worker is busy (or there are none).
        let total = AtomicU64::new(0);
        scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                outer.spawn(move || {
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_scope_returns_closure_result() {
        assert_eq!(scope(|_| 42), 42);
    }

    #[test]
    fn panicking_task_resurfaces_after_join() {
        let finished = Arc::new(AtomicU64::new(0));
        let fin = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("task boom"));
                let fin = Arc::clone(&fin);
                s.spawn(move || {
                    fin.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "scope must propagate the task panic");
        // The sibling task still ran to completion before the panic
        // resurfaced (scope joins everything first).
        assert_eq!(finished.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn detached_spawn_runs() {
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        spawn(move || {
            d.store(1, Ordering::Release);
        });
        // Drain via helping (robust even with zero workers), then give any
        // worker-side execution a moment to finish.
        while try_help() {}
        for _ in 0..1000 {
            if done.load(Ordering::Acquire) == 1 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("detached task never ran");
    }

    #[test]
    fn threads_is_at_least_one_and_stable() {
        let a = threads();
        let b = threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }
}
