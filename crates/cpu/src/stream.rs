//! STREAM-style memory bandwidth microbenchmark.
//!
//! The paper calibrates its expectations for the CPU multiway merge against
//! the maximum sustainable memory bandwidth measured with the STREAM
//! benchmark (Section 5.3), observing that modern DRAM achieves 75–80% of
//! its theoretical rate and that `gnu_parallel::multiway_merge` saturates
//! 71–94% of that. This module provides the same measurement for the host
//! the test suite runs on: it is used by examples to relate the *real*
//! machine's merge throughput to its copy bandwidth, mirroring the paper's
//! methodology (it plays no role in the simulated platforms, whose
//! bandwidths come from the calibration tables).

use std::time::Instant;

/// Result of one bandwidth measurement.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthSample {
    /// Bytes read plus bytes written.
    pub bytes_moved: u64,
    /// Wall-clock duration of the measured kernel.
    pub seconds: f64,
}

impl BandwidthSample {
    /// Throughput in bytes per second.
    #[must_use]
    pub fn bytes_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes_moved as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Throughput in (decimal) GB/s, the unit the paper reports.
    #[must_use]
    pub fn gb_per_sec(&self) -> f64 {
        self.bytes_per_sec() / 1e9
    }
}

/// STREAM "copy": `b[i] = a[i]`. Moves `2 × 8 × n` bytes.
#[must_use]
pub fn stream_copy(n: usize, iterations: usize) -> BandwidthSample {
    let a = vec![1.0f64; n];
    let mut b = vec![0.0f64; n];
    let start = Instant::now();
    for _ in 0..iterations.max(1) {
        b.copy_from_slice(&a);
        std::hint::black_box(&mut b);
    }
    BandwidthSample {
        bytes_moved: (2 * 8 * n * iterations.max(1)) as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// STREAM "triad": `c[i] = a[i] + s * b[i]`. Moves `3 × 8 × n` bytes.
#[must_use]
pub fn stream_triad(n: usize, iterations: usize) -> BandwidthSample {
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let s = 3.0f64;
    let start = Instant::now();
    for _ in 0..iterations.max(1) {
        for ((ci, &ai), &bi) in c.iter_mut().zip(&a).zip(&b) {
            *ci = ai + s * bi;
        }
        std::hint::black_box(&mut c);
    }
    BandwidthSample {
        bytes_moved: (3 * 8 * n * iterations.max(1)) as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_reports_positive_bandwidth() {
        let s = stream_copy(1 << 16, 2);
        assert!(s.bytes_per_sec() > 0.0);
        assert_eq!(s.bytes_moved, 2 * 8 * (1 << 16) * 2);
    }

    #[test]
    fn triad_reports_positive_bandwidth() {
        let s = stream_triad(1 << 14, 1);
        assert!(s.gb_per_sec() > 0.0);
    }

    #[test]
    fn zero_duration_guard() {
        let s = BandwidthSample {
            bytes_moved: 100,
            seconds: 0.0,
        };
        assert_eq!(s.bytes_per_sec(), 0.0);
    }
}
