//! Sample-sort host kernels: oversampled splitter selection and the
//! stable bucket partition (the scatter phase of GPU sample sort,
//! Leischner/Osipov/Sanders).
//!
//! Sample sort cuts an input into `b` buckets by `b − 1` *splitters*
//! drawn from the data itself, scatters every key into its bucket, and
//! sorts each bucket independently. Two properties matter for this
//! workspace and shape the API:
//!
//! * **Determinism.** Splitters are drawn at *evenly spaced positions*
//!   (the midpoints of `count` equal strides), never by an RNG — the
//!   multi-GPU driver requires bit-reproducible runs from the data alone,
//!   across every pool width and effect-executor budget. An evenly spaced
//!   sample of an arbitrary input is exactly as representative as a
//!   random one unless the input correlates value with position at the
//!   stride wavelength, which no paper distribution does.
//! * **Duplicate robustness.** A splitter is a `(key, position)` pair and
//!   the bucket order is lexicographic on `(radix image, position)`. For
//!   duplicate-heavy inputs (Zipf, constant) a key-only comparison would
//!   dump every copy of a frequent key into one bucket; the position
//!   tie-break spreads equal keys across buckets by *where they sit*,
//!   bounding bucket imbalance without sacrificing the sorted-concatenation
//!   property (bucket `i` keys still compare `<=` bucket `i+1` keys).
//!
//! The scatter reuses the OneSweep machinery's shape: fixed-size tiles
//! (never a function of the worker count), per-tile histograms, a serial
//! per-(tile, bucket) offset resolution, and a parallel scatter through
//! [`SendPtr`] into disjoint destination ranges. Output bytes are the
//! stable partition of the input — unique — so every thread count
//! produces identical bytes.

use crate::onesweep::SendPtr;
use msort_data::keys::RadixImage;
use msort_data::SortKey;

/// Scatter tile size in keys. Constant (like the OneSweep tile) so the
/// (tile, bucket) offset assignment never depends on the thread count.
const TILE: usize = 1 << 15;

/// A splitter: a sampled key plus the chunk-local position it was drawn
/// from. Ordering is lexicographic on `(radix image, position)`.
pub type Splitter<K> = (K, u64);

/// The bucket index of `key` at chunk-local position `pos` under
/// `splitters` (which must be sorted by `(radix, position)`): the number
/// of splitters that compare `<= (key, pos)`. `splitters.len() + 1`
/// buckets exist in total.
#[inline]
#[must_use]
pub fn bucket_of<K: SortKey>(key: K, pos: u64, splitters: &[Splitter<K>]) -> usize {
    let probe = (key.to_radix(), pos);
    splitters.partition_point(|&(sk, sp)| (sk.to_radix(), sp) <= probe)
}

/// Draw `buckets − 1` splitters from `chunks` by oversampling: each chunk
/// contributes up to `buckets × oversample` keys at evenly spaced
/// positions; the pooled sample is sorted and the splitters taken at
/// every `1/buckets` quantile of it.
///
/// Returns fewer than `buckets − 1` splitters only when the chunks hold
/// no keys at all (then zero: a single bucket).
#[must_use]
pub fn select_splitters<K: SortKey>(
    chunks: &[&[K]],
    buckets: usize,
    oversample: usize,
) -> Vec<Splitter<K>> {
    assert!(buckets >= 1, "at least one bucket");
    let per_chunk = buckets * oversample.max(1);
    let mut samples: Vec<Splitter<K>> = Vec::with_capacity(per_chunk * chunks.len());
    for chunk in chunks {
        let count = per_chunk.min(chunk.len());
        for t in 0..count {
            // Stride midpoints: position (2t+1)/(2·count) of the chunk.
            let pos = (2 * t + 1) * chunk.len() / (2 * count);
            samples.push((chunk[pos], pos as u64));
        }
    }
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_unstable_by_key(|&(k, p)| (k.to_radix(), p));
    (1..buckets)
        .map(|b| samples[b * samples.len() / buckets])
        .collect()
}

/// Per-bucket key counts of `data` under `splitters`, with each key's
/// position taken as its index in `data`. `counts.len()` is
/// `splitters.len() + 1` and the counts sum to `data.len()`.
#[must_use]
pub fn bucket_counts<K: SortKey>(data: &[K], splitters: &[Splitter<K>]) -> Vec<u64> {
    let decoded = decode(splitters);
    let mut counts = vec![0u64; splitters.len() + 1];
    for (i, key) in data.iter().enumerate() {
        counts[bucket_of_decoded(key.to_radix(), i as u64, &decoded)] += 1;
    }
    counts
}

/// Stable in-place bucket partition of `data` under `splitters`, using
/// `aux` as scratch (`aux.len() >= data.len()`). Returns the bucket
/// boundaries: `boundaries[b]..boundaries[b+1]` is bucket `b`, with
/// `boundaries[0] == 0` and `boundaries.last() == data.len()`.
///
/// Within a bucket, keys keep their input order (the scatter is stable),
/// so the output bytes are unique and identical for every `threads`
/// value — the property the effect-executor determinism suite pins.
///
/// # Panics
/// Panics if `aux.len() < data.len()` or `splitters` is not sorted by
/// `(radix, position)`.
pub fn partition_by_splitters<K: SortKey>(
    data: &mut [K],
    aux: &mut [K],
    splitters: &[Splitter<K>],
    threads: usize,
) -> Vec<usize> {
    let n = data.len();
    assert!(
        aux.len() >= n,
        "auxiliary buffer must cover the input length"
    );
    let buckets = splitters.len() + 1;
    let decoded = decode(splitters);
    assert!(
        decoded.windows(2).all(|w| w[0] <= w[1]),
        "splitters must be sorted by (radix, position)"
    );
    if n == 0 {
        return vec![0; buckets + 1];
    }
    let aux = &mut aux[..n];
    let tiles = n.div_ceil(TILE);

    // Per-tile histograms (parallel; totals are tile-order invariant).
    let mut tile_counts = vec![0usize; tiles * buckets];
    let run_parallel = threads > 1 && tiles > 1;
    if run_parallel {
        let src: &[K] = data;
        let decoded = &decoded;
        crate::pool::scope(|scope| {
            for (t, counts) in tile_counts.chunks_mut(buckets).enumerate() {
                scope.spawn(move || tile_histogram(src, t, decoded, counts));
            }
        });
    } else {
        for (t, counts) in tile_counts.chunks_mut(buckets).enumerate() {
            tile_histogram(data, t, &decoded, counts);
        }
    }

    // Bucket boundaries and per-(tile, bucket) scatter offsets, resolved
    // serially in fixed tile order — the stable-partition assignment.
    let mut boundaries = vec![0usize; buckets + 1];
    for b in 0..buckets {
        let total: usize = (0..tiles).map(|t| tile_counts[t * buckets + b]).sum();
        boundaries[b + 1] = boundaries[b] + total;
    }
    let mut offsets = vec![0usize; tiles * buckets];
    for b in 0..buckets {
        let mut acc = boundaries[b];
        for t in 0..tiles {
            offsets[t * buckets + b] = acc;
            acc += tile_counts[t * buckets + b];
        }
    }

    // Scatter into `aux` (disjoint (tile, bucket) ranges), then copy back.
    let dst = SendPtr(aux.as_mut_ptr());
    if run_parallel {
        let src: &[K] = data;
        let decoded = &decoded;
        crate::pool::scope(|scope| {
            for (t, offs) in offsets.chunks_mut(buckets).enumerate() {
                // SAFETY: `offs[b]` walks `[offsets[t][b], offsets[t][b] +
                // tile_counts[t][b])` — pairwise disjoint across
                // (tile, bucket) by the prefix construction and in bounds
                // of the length-n destination.
                scope.spawn(move || unsafe { tile_scatter(src, t, decoded, dst, offs) });
            }
        });
    } else {
        for (t, offs) in offsets.chunks_mut(buckets).enumerate() {
            // SAFETY: same disjoint-range argument as the parallel branch.
            unsafe { tile_scatter(data, t, &decoded, dst, offs) };
        }
    }
    data.copy_from_slice(aux);
    boundaries
}

/// Count tile `t`'s keys per bucket into `counts`.
fn tile_histogram<K: SortKey>(
    data: &[K],
    t: usize,
    decoded: &[(K::Radix, u64)],
    counts: &mut [usize],
) {
    let n = data.len();
    let tile = &data[t * TILE..((t + 1) * TILE).min(n)];
    for (i, key) in tile.iter().enumerate() {
        counts[bucket_of_decoded(key.to_radix(), (t * TILE + i) as u64, decoded)] += 1;
    }
}

/// Scatter tile `t`'s keys to their bucket slots, advancing `offs`.
///
/// # Safety
/// For every bucket `b`, the range `offs[b]` walks must be in bounds of
/// the destination and written by no other tile.
unsafe fn tile_scatter<K: SortKey>(
    data: &[K],
    t: usize,
    decoded: &[(K::Radix, u64)],
    dst: SendPtr<K>,
    offs: &mut [usize],
) {
    let n = data.len();
    let tile = &data[t * TILE..((t + 1) * TILE).min(n)];
    for (i, &key) in tile.iter().enumerate() {
        let b = bucket_of_decoded(key.to_radix(), (t * TILE + i) as u64, decoded);
        // SAFETY: per the function contract the slot is exclusively ours.
        unsafe { dst.write(offs[b], key) };
        offs[b] += 1;
    }
}

/// Pre-decoded splitters: `(radix image, position)`.
fn decode<K: SortKey>(splitters: &[Splitter<K>]) -> Vec<(K::Radix, u64)> {
    splitters.iter().map(|&(k, p)| (k.to_radix(), p)).collect()
}

#[inline]
fn bucket_of_decoded<R: RadixImage>(radix: R, pos: u64, decoded: &[(R, u64)]) -> usize {
    let probe = (radix, pos);
    decoded.partition_point(|&s| s <= probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, same_multiset, Distribution};

    fn check_partition<K: SortKey + PartialEq>(dist: Distribution, n: usize, g: usize, seed: u64) {
        let input: Vec<K> = generate(dist, n, seed);
        let views: Vec<&[K]> = input.chunks(n.div_ceil(g).max(1)).collect();
        let splitters = select_splitters(&views, g, 32);
        assert!(splitters.len() < g);

        let mut data = input.clone();
        let mut aux = vec![input.first().copied().unwrap_or(data[0]); n];
        let bounds = partition_by_splitters(&mut data, &mut aux, &splitters, 1);
        assert_eq!(bounds.len(), splitters.len() + 2);
        assert_eq!(*bounds.last().unwrap(), n);
        assert!(same_multiset(&input, &data), "{dist:?} lost keys");
        // Bucket b's keys all compare <= bucket b+1's keys.
        for b in 1..bounds.len() - 1 {
            if bounds[b] > bounds[b - 1] && bounds[b + 1] > bounds[b] {
                let last_prev = data[bounds[b] - 1];
                let first_next = data[bounds[b]];
                assert!(
                    last_prev.to_radix() <= first_next.to_radix(),
                    "{dist:?}: bucket boundary {b} out of order"
                );
            }
        }
        // Every key sits in the bucket `bucket_counts` predicted.
        let counts = bucket_counts(&input, &splitters);
        for (b, w) in bounds.windows(2).enumerate() {
            assert_eq!(counts[b], (w[1] - w[0]) as u64, "{dist:?} bucket {b}");
        }
        // Parallel partitions are bit-identical.
        for threads in [2usize, 4] {
            let mut par = input.clone();
            let b2 = partition_by_splitters(&mut par, &mut aux, &splitters, threads);
            assert_eq!(par, data, "{dist:?} threads={threads}");
            assert_eq!(b2, bounds);
        }
    }

    #[test]
    fn partitions_across_distributions_u32() {
        for dist in Distribution::paper_set() {
            check_partition::<u32>(dist, 80_000, 8, 11);
        }
    }

    #[test]
    fn partitions_u64_and_floats() {
        check_partition::<u64>(Distribution::Uniform, 70_000, 4, 12);
        check_partition::<f32>(Distribution::Normal, 70_000, 4, 13);
    }

    #[test]
    fn duplicate_heavy_input_stays_balanced() {
        // The (key, position) tie-break must spread a constant input
        // near-evenly across buckets.
        let g = 8;
        let n = 64_000;
        let input = vec![42u32; n];
        let views: Vec<&[u32]> = input.chunks(n / g).collect();
        let splitters = select_splitters(&views, g, 32);
        let counts = {
            // Per-chunk counts, as the multi-GPU driver computes them.
            let mut per_bucket = vec![0u64; g];
            for v in &views {
                for (b, c) in bucket_counts(v, &splitters).iter().enumerate() {
                    per_bucket[b] += c;
                }
            }
            per_bucket
        };
        let max = counts.iter().copied().max().unwrap();
        assert!(
            max as usize <= 2 * n / g,
            "constant input imbalanced: {counts:?}"
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let splitters: Vec<Splitter<u32>> = select_splitters(&[&[][..]], 4, 8);
        assert!(splitters.is_empty());
        let mut data: Vec<u32> = vec![];
        let mut aux: Vec<u32> = vec![];
        assert_eq!(
            partition_by_splitters(&mut data, &mut aux, &splitters, 4).len(),
            2
        );
        let mut one = vec![7u32];
        let mut aux = vec![0u32];
        let b = partition_by_splitters(&mut one, &mut aux, &[], 4);
        assert_eq!(b, vec![0, 1]);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn bucket_of_matches_partition_point_semantics() {
        let splitters: Vec<Splitter<u32>> = vec![(10, 5), (10, 9), (20, 0)];
        assert_eq!(bucket_of(5u32, 0, &splitters), 0);
        assert_eq!(bucket_of(10u32, 5, &splitters), 1); // ties go left of later splitters
        assert_eq!(bucket_of(10u32, 7, &splitters), 1);
        assert_eq!(bucket_of(10u32, 9, &splitters), 2);
        assert_eq!(bucket_of(15u32, 0, &splitters), 2);
        assert_eq!(bucket_of(25u32, 0, &splitters), 3);
    }

    #[test]
    #[should_panic(expected = "auxiliary buffer")]
    fn short_aux_panics() {
        let mut d = vec![3u32, 1, 2];
        let mut aux = vec![0u32; 2];
        let _ = partition_by_splitters(&mut d, &mut aux, &[], 1);
    }

    #[test]
    fn tile_straddling_is_bit_identical() {
        let n = super::TILE * 2 + 321;
        let input: Vec<u64> = generate(Distribution::ZipfDuplicates { skew_permille: 900 }, n, 17);
        let views: Vec<&[u64]> = input.chunks(n / 4).collect();
        let splitters = select_splitters(&views, 4, 16);
        let mut aux = vec![0u64; n];
        let mut serial = input.clone();
        let b1 = partition_by_splitters(&mut serial, &mut aux, &splitters, 1);
        let mut par = input.clone();
        let b2 = partition_by_splitters(&mut par, &mut aux, &splitters, 4);
        assert_eq!(serial, par);
        assert_eq!(b1, b2);
    }
}
