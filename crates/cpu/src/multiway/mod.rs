//! Multiway (k-way) merging of sorted runs.
//!
//! HET sort's final phase merges the `c × g` sorted chunks returned from the
//! GPUs in host memory (paper Section 5.3). The paper uses
//! `gnu_parallel::multiway_merge`, which combines a **loser tree** (exactly
//! `log k` comparisons per output element — the optimal for comparison-based
//! k-way merging) with **multisequence selection** to split the output range
//! across threads. Both pieces are implemented here:
//!
//! * [`LoserTree`] — the tournament tree merge cursor;
//! * [`multiway_merge`] — sequential k-way merge into an output slice;
//! * [`multisequence_select`] — given a global rank, find the per-run split
//!   positions such that all keys before the splits sort at or before all
//!   keys after them;
//! * [`parallel_multiway_merge`] — gnu_parallel-style: split the output into
//!   one equal part per thread with multisequence selection, then merge each
//!   part independently with a loser tree.

mod loser_tree;
mod parallel;
mod select;

pub use loser_tree::LoserTree;
pub use parallel::{parallel_multiway_merge, parallel_multiway_merge_with, ParallelMergeConfig};
pub use select::multisequence_select;

use msort_data::SortKey;

/// Merge `runs` (each sorted) into `out` with a sequential loser tree.
///
/// # Panics
/// Panics if `out.len()` differs from the total input length.
pub fn multiway_merge<K: SortKey>(runs: &[&[K]], out: &mut [K]) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(out.len(), total, "output length must equal total input");
    let mut tree = LoserTree::new(runs);
    for slot in out.iter_mut() {
        *slot = tree.pop().expect("tree yields exactly `total` keys");
    }
    debug_assert!(tree.pop().is_none());
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    #[test]
    fn merges_disjoint_runs() {
        let a: Vec<u32> = (0..100).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..100).map(|x| x * 3 + 1).collect();
        let c: Vec<u32> = (0..100).map(|x| x * 3 + 2).collect();
        let mut out = vec![0u32; 300];
        multiway_merge(&[&a, &b, &c], &mut out);
        assert_eq!(out, (0..300u32).collect::<Vec<_>>());
    }

    #[test]
    fn merges_random_runs() {
        let mut runs: Vec<Vec<u64>> = Vec::new();
        let mut all: Vec<u64> = Vec::new();
        for i in 0..7 {
            let mut r: Vec<u64> = generate(Distribution::Uniform, 1000 + i * 37, i as u64);
            r.sort_unstable();
            all.extend_from_slice(&r);
            runs.push(r);
        }
        let views: Vec<&[u64]> = runs.iter().map(Vec::as_slice).collect();
        let mut out = vec![0u64; all.len()];
        multiway_merge(&views, &mut out);
        assert!(is_sorted(&out));
        assert!(same_multiset(&all, &out));
    }

    #[test]
    fn merges_with_empty_runs() {
        let a: Vec<u32> = vec![1, 5, 9];
        let b: Vec<u32> = vec![];
        let c: Vec<u32> = vec![2, 3];
        let mut out = vec![0u32; 5];
        multiway_merge(&[&a, &b, &c], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 9]);
    }

    #[test]
    fn merges_single_run() {
        let a: Vec<u32> = vec![1, 2, 3];
        let mut out = vec![0u32; 3];
        multiway_merge(&[&a], &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn merges_no_runs() {
        let mut out: Vec<u32> = vec![];
        multiway_merge(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn wrong_output_length_panics() {
        let a: Vec<u32> = vec![1, 2];
        let mut out = vec![0u32; 3];
        multiway_merge(&[&a], &mut out);
    }
}
