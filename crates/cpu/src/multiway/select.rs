//! Multisequence selection: split `k` sorted runs at a global rank.
//!
//! Given sorted runs `R₀..R_{k−1}` and a rank `r`, find per-run split
//! positions `s₀..s_{k−1}` with `Σ sᵢ = r` such that every key before a split
//! sorts at or before every key after any split. This is the primitive that
//! lets a parallel multiway merge hand each thread an independent output
//! range (gnu_parallel does the same internally).
//!
//! The implementation binary-searches the key's radix-image domain: find the
//! smallest image `v` with `count_lt(v) ≤ r ≤ count_le(v)`, take all keys
//! `< v`, and distribute the remaining `r − count_lt(v)` ties (`== v`)
//! greedily over the runs. Complexity `O(k · log n · log |domain|)`.

use msort_data::keys::{RadixImage, SortKey};

/// Split positions for `rank` across `runs`. See module docs.
///
/// # Panics
/// Panics if `rank` exceeds the total number of keys.
#[must_use]
pub fn multisequence_select<K: SortKey>(runs: &[&[K]], rank: usize) -> Vec<usize> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert!(rank <= total, "rank {rank} out of range (total {total})");
    if runs.is_empty() {
        return Vec::new();
    }
    if rank == 0 {
        return vec![0; runs.len()];
    }
    if rank == total {
        return runs.iter().map(|r| r.len()).collect();
    }

    // Binary search the image domain for the smallest v with count_le(v) >= rank.
    let mut lo = K::Radix::zero().to_u64();
    let mut hi = K::Radix::max_value().to_u64();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if count_le::<K>(runs, mid) >= rank as u64 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let pivot = lo;

    // Take everything strictly below the pivot, then distribute ties.
    let mut splits: Vec<usize> = runs
        .iter()
        .map(|r| partition_point_le::<K>(r, pivot.wrapping_sub(1), pivot == 0))
        .collect();
    let below: usize = splits.iter().sum();
    debug_assert!(below <= rank);
    let mut ties_needed = rank - below;
    for (run, split) in runs.iter().zip(splits.iter_mut()) {
        if ties_needed == 0 {
            break;
        }
        let ties_here = partition_point_le::<K>(run, pivot, false) - *split;
        let take = ties_here.min(ties_needed);
        *split += take;
        ties_needed -= take;
    }
    debug_assert_eq!(ties_needed, 0, "tie distribution must consume the rank");
    splits
}

/// Number of keys with image `<= v` across all runs.
fn count_le<K: SortKey>(runs: &[&[K]], v: u64) -> u64 {
    runs.iter()
        .map(|r| partition_point_le::<K>(r, v, false) as u64)
        .sum()
}

/// `partition_point` for "image <= v"; when `none` is set, returns 0
/// (used for the `pivot == 0` underflow case of "image < pivot").
fn partition_point_le<K: SortKey>(run: &[K], v: u64, none: bool) -> usize {
    if none {
        return 0;
    }
    run.partition_point(|k| k.to_radix().to_u64() <= v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, Distribution};

    /// Check the fundamental split property: max(prefixes) <= min(suffixes).
    fn assert_valid_split<K: SortKey>(runs: &[&[K]], splits: &[usize], rank: usize) {
        assert_eq!(splits.iter().sum::<usize>(), rank);
        let max_before = runs
            .iter()
            .zip(splits)
            .filter_map(|(r, &s)| r[..s].last())
            .map(|k| k.to_radix().to_u64())
            .max();
        let min_after = runs
            .iter()
            .zip(splits)
            .filter_map(|(r, &s)| r.get(s))
            .map(|k| k.to_radix().to_u64())
            .min();
        if let (Some(mb), Some(ma)) = (max_before, min_after) {
            assert!(mb <= ma, "split property violated: {mb} > {ma}");
        }
    }

    #[test]
    fn selects_across_uniform_runs() {
        let mut runs_owned: Vec<Vec<u32>> = (0..4)
            .map(|i| {
                let mut v: Vec<u32> = generate(Distribution::Uniform, 500, i);
                v.sort_unstable();
                v
            })
            .collect();
        runs_owned[2].truncate(123); // unequal lengths
        let runs: Vec<&[u32]> = runs_owned.iter().map(Vec::as_slice).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        for rank in [0, 1, 17, total / 3, total / 2, total - 1, total] {
            let splits = multisequence_select(&runs, rank);
            assert_valid_split(&runs, &splits, rank);
        }
    }

    #[test]
    fn selects_with_heavy_duplicates() {
        let a = vec![5u32; 100];
        let b = vec![5u32; 50];
        let mut c = vec![1u32; 30];
        c.extend(vec![5u32; 20]);
        c.extend(vec![9u32; 10]);
        let runs: Vec<&[u32]> = vec![&a, &b, &c];
        for rank in [0, 29, 30, 31, 100, 199, 200, 201, 210] {
            let splits = multisequence_select(&runs, rank);
            assert_valid_split(&runs, &splits, rank);
        }
    }

    #[test]
    fn selects_with_empty_runs() {
        let a: Vec<u32> = vec![];
        let b = vec![1u32, 2, 3];
        let runs: Vec<&[u32]> = vec![&a, &b];
        let splits = multisequence_select(&runs, 2);
        assert_eq!(splits, vec![0, 2]);
    }

    #[test]
    fn selects_zero_image_keys() {
        // pivot == 0 exercises the underflow path of "image < pivot".
        let a = vec![0u32, 0, 1];
        let b = vec![0u32, 2];
        let runs: Vec<&[u32]> = vec![&a, &b];
        for rank in 0..=5 {
            let splits = multisequence_select(&runs, rank);
            assert_valid_split(&runs, &splits, rank);
        }
    }

    #[test]
    fn selects_signed_and_float_keys() {
        let mut a: Vec<i32> = generate(Distribution::Uniform, 300, 1);
        let mut b: Vec<i32> = generate(Distribution::Uniform, 200, 2);
        a.sort_unstable();
        b.sort_unstable();
        let runs: Vec<&[i32]> = vec![&a, &b];
        let splits = multisequence_select(&runs, 250);
        assert_valid_split(&runs, &splits, 250);

        let mut fa: Vec<f64> = generate(Distribution::Normal, 300, 3);
        fa.sort_unstable_by(|x, y| x.total_cmp_key(y));
        let fruns: Vec<&[f64]> = vec![&fa];
        let splits = multisequence_select(&fruns, 150);
        assert_valid_split(&fruns, &splits, 150);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let a = [1u32];
        let _ = multisequence_select(&[&a[..]], 2);
    }
}
