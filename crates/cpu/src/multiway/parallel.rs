//! Parallel multiway merge (gnu_parallel-style).
//!
//! The output range is split into one equal part per thread by
//! [`multisequence selection`](super::multisequence_select); each thread then
//! merges its part independently with a [`LoserTree`](super::LoserTree).
//! Because parts are disjoint output slices fed from disjoint input suffixes,
//! the merge is embarrassingly parallel and — like the real
//! `gnu_parallel::multiway_merge` the paper measures — memory-bandwidth
//! bound rather than compute bound.

use super::multisequence_select;
use msort_data::SortKey;

/// Configuration for [`parallel_multiway_merge`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelMergeConfig {
    /// Number of merger threads.
    pub threads: usize,
    /// Inputs smaller than this merge sequentially (thread spawn overhead
    /// would dominate below it).
    pub sequential_threshold: usize,
}

impl Default for ParallelMergeConfig {
    fn default() -> Self {
        Self {
            threads: crate::default_threads(),
            sequential_threshold: 1 << 14,
        }
    }
}

/// Merge `runs` (each sorted) into `out` using the default configuration.
///
/// # Panics
/// Panics if `out.len()` differs from the total input length.
pub fn parallel_multiway_merge<K: SortKey>(runs: &[&[K]], out: &mut [K]) {
    parallel_multiway_merge_with(runs, out, ParallelMergeConfig::default());
}

/// Merge `runs` into `out` with an explicit configuration.
pub fn parallel_multiway_merge_with<K: SortKey>(
    runs: &[&[K]],
    out: &mut [K],
    config: ParallelMergeConfig,
) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(out.len(), total, "output length must equal total input");
    let threads = config.threads.max(1);
    if threads == 1 || total < config.sequential_threshold {
        super::multiway_merge(runs, out);
        return;
    }

    // Split points: ranks 0, total/T, 2·total/T, ..., total.
    let mut boundaries = Vec::with_capacity(threads + 1);
    for t in 0..=threads {
        boundaries.push(t * total / threads);
    }

    // For each part, the per-run input window [splits[t], splits[t+1]).
    let split_sets: Vec<Vec<usize>> = boundaries
        .iter()
        .map(|&rank| multisequence_select(runs, rank))
        .collect();

    crate::pool::scope(|scope| {
        let mut rest = out;
        for t in 0..threads {
            let part_len = boundaries[t + 1] - boundaries[t];
            let (part, tail) = rest.split_at_mut(part_len);
            rest = tail;
            let lo = &split_sets[t];
            let hi = &split_sets[t + 1];
            let windows: Vec<&[K]> = runs
                .iter()
                .zip(lo.iter().zip(hi.iter()))
                .map(|(r, (&a, &b))| &r[a..b])
                .collect();
            scope.spawn(move || {
                super::multiway_merge(&windows, part);
            });
        }
    });

    // The tie-distribution in multisequence selection is greedy by run
    // index for every boundary, so equal keys land in consistent windows
    // and concatenated parts are globally sorted.
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check(k: usize, n_per: usize, threads: usize, seed: u64) {
        let mut runs_owned: Vec<Vec<u32>> = (0..k)
            .map(|i| {
                let mut v: Vec<u32> =
                    generate(Distribution::Uniform, n_per + i * 13, seed + i as u64);
                v.sort_unstable();
                v
            })
            .collect();
        if k > 2 {
            runs_owned[1].clear(); // one empty run
        }
        let runs: Vec<&[u32]> = runs_owned.iter().map(Vec::as_slice).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let mut all: Vec<u32> = Vec::with_capacity(total);
        for r in &runs {
            all.extend_from_slice(r);
        }
        let mut out = vec![0u32; total];
        parallel_multiway_merge_with(
            &runs,
            &mut out,
            ParallelMergeConfig {
                threads,
                sequential_threshold: 0,
            },
        );
        assert!(is_sorted(&out), "k={k} threads={threads} not sorted");
        assert!(same_multiset(&all, &out), "k={k} lost keys");
    }

    #[test]
    fn merges_in_parallel() {
        check(4, 5_000, 4, 1);
        check(8, 2_000, 3, 2);
        check(2, 10_000, 7, 3);
    }

    #[test]
    fn single_thread_matches_sequential() {
        check(5, 3_000, 1, 4);
    }

    #[test]
    fn more_threads_than_keys() {
        check(2, 3, 8, 5);
    }

    #[test]
    fn duplicate_heavy_runs() {
        let mut runs_owned: Vec<Vec<u32>> = (0..4)
            .map(|i| {
                let mut v: Vec<u32> = generate(
                    Distribution::ZipfDuplicates {
                        skew_permille: 1500,
                    },
                    4_000,
                    i,
                );
                v.sort_unstable();
                v
            })
            .collect();
        runs_owned[0].push(u32::MAX);
        runs_owned[0].sort_unstable();
        let runs: Vec<&[u32]> = runs_owned.iter().map(Vec::as_slice).collect();
        let total: usize = runs.iter().map(|r| r.len()).sum();
        let mut out = vec![0u32; total];
        parallel_multiway_merge_with(
            &runs,
            &mut out,
            ParallelMergeConfig {
                threads: 4,
                sequential_threshold: 0,
            },
        );
        assert!(is_sorted(&out));
    }

    #[test]
    fn default_config_small_input_sequential_path() {
        let a = vec![1u32, 3];
        let b = vec![2u32];
        let mut out = vec![0u32; 3];
        parallel_multiway_merge(&[&a, &b], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
