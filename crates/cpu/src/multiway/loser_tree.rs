//! Loser tree (tournament tree) merge cursor.
//!
//! A loser tree over `k` runs yields the next smallest key with exactly
//! `⌈log₂ k⌉` comparisons: each internal node stores the *loser* of the
//! comparison between its subtrees and the winner propagates to the root.
//! Replaying a leaf after consuming the winner touches only the path from
//! that leaf to the root. This is the structure behind
//! `gnu_parallel::multiway_merge` (paper Section 5.3), which beats heap-based
//! merging (`2·log k` comparisons) on memory-bandwidth-bound merges.

use msort_data::SortKey;

/// Merge cursor over `k` sorted runs.
///
/// ```
/// use msort_cpu::LoserTree;
/// let a = [1u32, 4, 7];
/// let b = [2u32, 5, 8];
/// let c = [3u32, 6, 9];
/// let mut tree = LoserTree::new(&[&a[..], &b[..], &c[..]]);
/// let merged: Vec<u32> = std::iter::from_fn(|| tree.pop()).collect();
/// assert_eq!(merged, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
/// ```
pub struct LoserTree<'a, K: SortKey> {
    /// The input runs.
    runs: Vec<&'a [K]>,
    /// Per-run cursor (next unconsumed index).
    cursors: Vec<usize>,
    /// Internal nodes: index of the losing *run* at each node; `tree[0]`
    /// holds the overall winner.
    tree: Vec<usize>,
    /// Number of leaves (k rounded up to a power of two).
    leaves: usize,
    /// Remaining elements across all runs.
    remaining: usize,
}

impl<'a, K: SortKey> LoserTree<'a, K> {
    /// Build a loser tree over `runs`; `O(k)` time.
    #[must_use]
    pub fn new(runs: &[&'a [K]]) -> Self {
        let k = runs.len().max(1);
        let leaves = k.next_power_of_two();
        let remaining = runs.iter().map(|r| r.len()).sum();
        let mut this = Self {
            runs: runs.to_vec(),
            cursors: vec![0; runs.len()],
            tree: vec![usize::MAX; leaves],
            leaves,
            remaining,
        };
        this.rebuild();
        this
    }

    /// Number of keys not yet popped.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Pop the next smallest key, or `None` when all runs are exhausted.
    /// Stable across runs: ties resolve to the lower run index.
    #[inline]
    pub fn pop(&mut self) -> Option<K> {
        if self.remaining == 0 {
            return None;
        }
        let winner = self.tree[0];
        let key = self.runs[winner][self.cursors[winner]];
        self.cursors[winner] += 1;
        self.remaining -= 1;
        if self.remaining > 0 {
            self.replay(winner);
        }
        Some(key)
    }

    /// Current head key of run `r`, if not exhausted.
    #[inline]
    fn head(&self, r: usize) -> Option<K> {
        if r < self.runs.len() {
            self.runs[r].get(self.cursors[r]).copied()
        } else {
            None
        }
    }

    /// `true` if run `a`'s head beats (sorts before) run `b`'s head.
    /// Exhausted runs always lose; ties go to the lower run index (stability).
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.head(a), self.head(b)) {
            (Some(ka), Some(kb)) => {
                let (ia, ib) = (ka.to_radix(), kb.to_radix());
                ia < ib || (ia == ib && a < b)
            }
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Rebuild the whole tree from scratch (`O(k)` comparisons).
    fn rebuild(&mut self) {
        // Play the tournament bottom-up: winners[i] for each node of the
        // virtual complete binary tree; tree[i] stores the loser.
        let mut winners = vec![usize::MAX; 2 * self.leaves];
        for leaf in 0..self.leaves {
            winners[self.leaves + leaf] = leaf;
        }
        for node in (1..self.leaves).rev() {
            let (l, r) = (winners[2 * node], winners[2 * node + 1]);
            if self.beats(l, r) {
                winners[node] = l;
                self.tree[node] = r;
            } else {
                winners[node] = r;
                self.tree[node] = l;
            }
        }
        self.tree[0] = winners[1.min(self.tree.len() - 1)];
        if self.leaves == 1 {
            self.tree[0] = 0;
        }
    }

    /// Replay the path from run `r`'s leaf to the root after its head
    /// changed (`⌈log₂ k⌉` comparisons).
    #[inline]
    fn replay(&mut self, r: usize) {
        let mut winner = r;
        let mut node = (self.leaves + r) / 2;
        while node >= 1 {
            let loser = self.tree[node];
            if self.beats(loser, winner) {
                self.tree[node] = winner;
                winner = loser;
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::is_sorted;

    fn drain<K: SortKey>(runs: &[&[K]]) -> Vec<K> {
        let mut tree = LoserTree::new(runs);
        std::iter::from_fn(|| tree.pop()).collect()
    }

    #[test]
    fn merges_two_runs() {
        let out = drain(&[&[1u32, 3, 5][..], &[2u32, 4, 6][..]]);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn non_power_of_two_runs() {
        let out = drain(&[&[7u32][..], &[2u32, 9][..], &[1u32, 8, 10][..]]);
        assert_eq!(out, vec![1, 2, 7, 8, 9, 10]);
    }

    #[test]
    fn empty_and_unequal_runs() {
        let out = drain(&[&[][..], &[5u32][..], &[][..], &[1u32, 2, 3][..]]);
        assert_eq!(out, vec![1, 2, 3, 5]);
    }

    #[test]
    fn single_run_passthrough() {
        let out = drain(&[&[1u32, 1, 2][..]]);
        assert_eq!(out, vec![1, 1, 2]);
    }

    #[test]
    fn no_runs() {
        let out: Vec<u32> = drain(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn all_duplicates_stable_by_run() {
        // With equal keys everywhere, stability means run 0 drains first.
        let a = [5u32, 5];
        let b = [5u32, 5];
        let mut tree = LoserTree::new(&[&a[..], &b[..]]);
        assert_eq!(tree.pop(), Some(5));
        // Can't observe run ids from keys alone, but ordering must not panic
        // and must drain fully.
        let rest: Vec<u32> = std::iter::from_fn(|| tree.pop()).collect();
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn many_runs_random() {
        let mut rng = msort_data::Rng::seed_from_u64(3);
        let runs: Vec<Vec<u32>> = (0..17)
            .map(|_| {
                let mut v: Vec<u32> = (0..rng.u32_in(0..200)).map(|_| rng.u32()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let out = drain(&views);
        assert!(is_sorted(&out));
        assert_eq!(out.len(), runs.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn remaining_counts_down() {
        let a = [1u32, 2];
        let b = [3u32];
        let mut tree = LoserTree::new(&[&a[..], &b[..]]);
        assert_eq!(tree.remaining(), 3);
        tree.pop();
        assert_eq!(tree.remaining(), 2);
        tree.pop();
        tree.pop();
        assert_eq!(tree.remaining(), 0);
        assert_eq!(tree.pop(), None);
    }

    #[test]
    fn floats_total_order() {
        let a = [-1.5f32, 0.0, 2.0];
        let b = [-0.5f32, 1.0];
        let out = drain(&[&a[..], &b[..]]);
        assert!(is_sorted(&out));
    }
}
