//! Parallel comparison sort: chunked local sorts + parallel multiway merge.
//!
//! This is the structure of the library primitives the paper benchmarks as
//! CPU baselines (`gnu_parallel::sort`, TBB `parallel_sort`, parallel
//! `std::sort`): split the input into one chunk per thread, sort chunks
//! locally, then merge them with the parallel multiway merge. It doubles as
//! the reference "CPU sort" for everything in the workspace that needs a
//! fast host-side sort of real data.

use crate::multiway::{parallel_multiway_merge_with, ParallelMergeConfig};
use msort_data::SortKey;

/// Sort `data` with the default thread count.
pub fn parallel_sort<K: SortKey>(data: &mut [K]) {
    parallel_sort_with(data, crate::default_threads());
}

/// Sort `data` using `threads` worker threads.
pub fn parallel_sort_with<K: SortKey>(data: &mut [K], threads: usize) {
    let n = data.len();
    let threads = threads.max(1);
    if threads == 1 || n < 1 << 14 {
        data.sort_unstable_by(|a, b| a.total_cmp_key(b));
        return;
    }

    // Phase 1: sort one chunk per thread in place.
    let chunk_len = n.div_ceil(threads);
    crate::pool::scope(|scope| {
        for chunk in data.chunks_mut(chunk_len) {
            scope.spawn(move || chunk.sort_unstable_by(|a, b| a.total_cmp_key(b)));
        }
    });

    // Phase 2: parallel multiway merge into a temporary, then copy back.
    let mut merged = vec![data[0]; n];
    {
        let runs: Vec<&[K]> = data.chunks(chunk_len).collect();
        parallel_multiway_merge_with(
            &runs,
            &mut merged,
            ParallelMergeConfig {
                threads,
                sequential_threshold: 0,
            },
        );
    }
    data.copy_from_slice(&merged);
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check(dist: Distribution, n: usize, threads: usize, seed: u64) {
        let input: Vec<u64> = generate(dist, n, seed);
        let mut sorted = input.clone();
        parallel_sort_with(&mut sorted, threads);
        assert!(is_sorted(&sorted), "{dist:?} n={n} threads={threads}");
        assert!(same_multiset(&input, &sorted));
    }

    #[test]
    fn sorts_large_parallel() {
        check(Distribution::Uniform, 100_000, 4, 1);
        check(Distribution::ReverseSorted, 50_000, 3, 2);
    }

    #[test]
    fn sorts_small_sequential_path() {
        check(Distribution::Uniform, 100, 4, 3);
        check(Distribution::Uniform, 0, 4, 3);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let input: Vec<u32> = generate(Distribution::Uniform, 60_000, 9);
        let mut a = input.clone();
        let mut b = input.clone();
        parallel_sort_with(&mut a, 1);
        parallel_sort_with(&mut b, 5);
        assert_eq!(a, b);
    }
}
