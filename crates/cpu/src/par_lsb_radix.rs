//! Parallel out-of-place LSB radix sort (Polychroniou & Ross style).
//!
//! The paper's CPU-baseline bake-off (Section 6) includes the SIMD-enabled
//! LSB radix sort by Polychroniou & Ross, which wins for small inputs but
//! loses to PARADIS at scale and is x86-only. This is its portable stand-in:
//! a multi-threaded, stable, out-of-place LSB radix sort —
//!
//! * per pass, threads build histograms over disjoint stripes;
//! * a global two-dimensional prefix sum assigns every (thread, bucket)
//!   pair a disjoint output region — scatters then proceed without any
//!   synchronization, preserving stability (stripe order within buckets);
//! * buffers ping-pong between passes, constant digits skip their pass.

use crate::lsb_radix::{BUCKETS, DIGIT_BITS};
use crate::onesweep::SendPtr;
use msort_data::keys::{RadixImage, SortKey};

/// Sort `data` in place using the parallel LSB radix sort with `threads`
/// workers.
pub fn parallel_lsb_radix_sort<K: SortKey>(data: &mut [K], threads: usize) {
    if data.len() <= 1 {
        return;
    }
    let mut aux = vec![data[0]; data.len()];
    parallel_lsb_radix_sort_with_aux(data, &mut aux, threads);
}

/// [`parallel_lsb_radix_sort`] with a caller-provided scratch buffer
/// (`aux.len() >= data.len()`), so callers that already own device-style
/// auxiliary storage (the GPU runtime) avoid the allocation.
pub fn parallel_lsb_radix_sort_with_aux<K: SortKey>(data: &mut [K], aux: &mut [K], threads: usize) {
    let n = data.len();
    let threads = threads.max(1).min(n.max(1));
    if n <= 1 {
        return;
    }
    let aux = &mut aux[..n];
    if threads == 1 || n < 1 << 14 {
        crate::lsb_radix::lsb_radix_sort_with_aux(data, aux);
        return;
    }

    let passes = (K::Radix::BITS / DIGIT_BITS) as usize;
    let stripe = n.div_ceil(threads);
    let mut in_data = true;

    for p in 0..passes {
        let shift = p as u32 * DIGIT_BITS;
        // Source slice and destination pointer refer to *different*
        // allocations each pass; raw-derived views sidestep the borrow
        // checker's inability to see that the ping-pong never aliases.
        let (src, dst_ptr): (&[K], SendPtr<K>) = if in_data {
            // SAFETY: `data` and `aux` are distinct allocations of len n.
            (
                unsafe { std::slice::from_raw_parts(data.as_ptr(), n) },
                SendPtr(aux.as_mut_ptr()),
            )
        } else {
            (
                unsafe { std::slice::from_raw_parts(aux.as_ptr(), n) },
                SendPtr(data.as_mut_ptr()),
            )
        };

        // Per-thread histograms over stripes, written into pre-split slots.
        let mut histograms: Vec<Vec<usize>> = vec![vec![0usize; BUCKETS]; n.div_ceil(stripe)];
        crate::pool::scope(|scope| {
            for (chunk, hist) in src.chunks(stripe).zip(histograms.iter_mut()) {
                scope.spawn(move || {
                    for k in chunk {
                        hist[k.to_radix().digit(shift, DIGIT_BITS)] += 1;
                    }
                });
            }
        });

        // Skip constant-digit passes.
        let mut bucket_totals = vec![0usize; BUCKETS];
        for h in &histograms {
            for (t, &c) in bucket_totals.iter_mut().zip(h) {
                *t += c;
            }
        }
        if bucket_totals.contains(&n) {
            continue;
        }

        // offsets[t][b]: where thread t writes its first key of bucket b.
        // Column-major prefix sum keeps stripe order within each bucket,
        // which is what makes the sort stable.
        let mut offsets: Vec<Vec<usize>> = vec![vec![0usize; BUCKETS]; histograms.len()];
        let mut acc = 0usize;
        for b in 0..BUCKETS {
            for (t, h) in histograms.iter().enumerate() {
                offsets[t][b] = acc;
                acc += h[b];
            }
        }
        debug_assert_eq!(acc, n);

        // Parallel scatter into disjoint regions.
        crate::pool::scope(|scope| {
            for (chunk, mut my_offsets) in src.chunks(stripe).zip(offsets) {
                let dst = dst_ptr;
                scope.spawn(move || {
                    for &key in chunk {
                        let d = key.to_radix().digit(shift, DIGIT_BITS);
                        // SAFETY: the (thread, bucket) output regions are
                        // pairwise disjoint by the prefix-sum construction,
                        // so no two threads write the same slot.
                        unsafe { dst.write(my_offsets[d], key) };
                        my_offsets[d] += 1;
                    }
                });
            }
        });

        in_data = !in_data;
    }

    if !in_data {
        data.copy_from_slice(aux);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    fn check<K: SortKey>(dist: Distribution, n: usize, threads: usize, seed: u64) {
        let input: Vec<K> = generate(dist, n, seed);
        let mut sorted = input.clone();
        parallel_lsb_radix_sort(&mut sorted, threads);
        assert!(is_sorted(&sorted), "{dist:?} n={n} threads={threads}");
        assert!(same_multiset(&input, &sorted), "{dist:?} lost keys");
    }

    #[test]
    fn sorts_parallel_across_distributions() {
        for dist in Distribution::paper_set() {
            check::<u32>(dist, 60_000, 4, 42);
        }
    }

    #[test]
    fn sorts_key_types() {
        check::<i32>(Distribution::Uniform, 40_000, 3, 1);
        check::<f32>(Distribution::Normal, 40_000, 4, 2);
        check::<u64>(Distribution::Uniform, 40_000, 4, 3);
        check::<f64>(Distribution::Normal, 40_000, 2, 4);
    }

    #[test]
    fn small_inputs_use_sequential_path() {
        check::<u32>(Distribution::Uniform, 100, 8, 5);
        check::<u32>(Distribution::Uniform, 0, 8, 5);
        check::<u32>(Distribution::Uniform, 1, 8, 5);
    }

    #[test]
    fn matches_sequential_result_exactly() {
        let input: Vec<u32> = generate(Distribution::Uniform, 100_000, 9);
        let mut a = input.clone();
        let mut b = input.clone();
        parallel_lsb_radix_sort(&mut a, 4);
        crate::lsb_radix::lsb_radix_sort(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn stability_via_payload_order() {
        // Keys with few distinct values: stable sorts keep the original
        // relative order. Encode position in the low bits and sort by the
        // high byte only... we can't mask the comparator, so instead sort
        // u64 values whose low 32 bits are unique positions: a stable sort
        // by the full key equals an unstable one, but the parallel and the
        // (stable) sequential scatter must produce identical outputs even
        // when restricted to the duplicate-heavy top bits. Covered by
        // matches_sequential_result_exactly; here we check duplicates.
        check::<u32>(
            Distribution::ZipfDuplicates {
                skew_permille: 1800,
            },
            80_000,
            4,
            11,
        );
    }

    #[test]
    fn more_threads_than_elements() {
        check::<u32>(Distribution::Uniform, 20_000, 64, 13);
    }

    #[test]
    fn with_aux_matches_allocating_variant() {
        let input: Vec<u64> = generate(Distribution::Uniform, 50_000, 17);
        let mut a = input.clone();
        let mut b = input.clone();
        // Oversized aux: only the first n slots may be used.
        let mut aux = vec![0u64; input.len() + 100];
        parallel_lsb_radix_sort_with_aux(&mut a, &mut aux, 4);
        parallel_lsb_radix_sort(&mut b, 4);
        assert_eq!(a, b);
    }
}
