//! Multi-node cluster platforms.
//!
//! A cluster here is **one** [`Topology`]: `n` copies of a paper platform's
//! node hardware (appended with globally dense GPU and socket indices by
//! [`msort_topology::append_paper_node`]), plus per-node NICs and a central
//! fabric switch. Because the cluster is a single graph, every existing
//! engine layer works on it unchanged — Dijkstra routing finds cross-node
//! paths through the NICs, the PR-1 [`RateAllocator`] arbitrates NIC
//! contention exactly as it does NVLink, `FabricHealth` degrades NIC links
//! like any other link, and the flow simulator emits per-NIC utilization
//! counters for free.
//!
//! The shape per node: one NIC per CPU socket (two per node), each attached
//! to its socket and to the central fabric switch at the fabric's sustained
//! rate. Cross-node traffic therefore leaves through the socket-local NIC;
//! if that NIC's uplink dies, rerouting falls back to the sibling socket's
//! NIC over the inter-socket link (X-Bus / UPI / Infinity Fabric).
//!
//! Capacities follow De Sensi et al., "Exploring GPU-to-GPU Communication:
//! Insights into Supercomputer Interconnects" (arXiv 2408.14090) — see
//! [`Fabric`] for the numbers.
//!
//! ```
//! use msort_cluster::dgx_a100_cluster;
//! use msort_topology::Fabric;
//!
//! let p = dgx_a100_cluster(2, Fabric::IbHdr);
//! assert_eq!(p.gpu_count(), 16);
//! assert_eq!(p.name(), "2x NVIDIA DGX A100 (InfiniBand HDR)");
//! ```
//!
//! [`RateAllocator`]: msort_topology::RateAllocator
//! [`Topology`]: msort_topology::Topology

use msort_topology::{
    append_paper_node, ClusterLayout, Fabric, Platform, PlatformId, TopologyBuilder,
};

/// Build an `n_nodes`-node cluster of `base` boxes joined by `fabric`.
///
/// Node `k` owns GPUs `k*g .. (k+1)*g` and CPU sockets `2k`, `2k + 1`
/// (globally dense indices — see [`ClusterLayout`]). Each socket gets one
/// NIC (`"Node {k} NIC {s}"`); all NICs meet at one non-blocking fabric
/// switch (`"{fabric} switch"`). Both NIC hops run at the fabric's
/// sustained per-direction rate, so a single cross-node stream is paced by
/// the fabric, and concurrent streams out of one socket contend for its NIC
/// under max-min fairness.
///
/// `n_nodes == 1` is allowed (the fabric sits idle) so scaling sweeps can
/// include a single-node baseline on an identical code path.
///
/// # Panics
/// Panics if `n_nodes == 0` or `base` is [`PlatformId::Custom`].
#[must_use]
pub fn cluster_of(base: PlatformId, n_nodes: usize, fabric: Fabric) -> Platform {
    assert!(n_nodes >= 1, "a cluster needs at least one node");
    let mut b = TopologyBuilder::new();
    let sockets_per_node: Vec<_> = (0..n_nodes)
        .map(|node| append_paper_node(&mut b, base, node))
        .collect();
    let kind = fabric.link_kind();
    let rate = fabric.effective_per_dir();
    let switch = b.nic(format!("{} switch", fabric.name()));
    for (node, sockets) in sockets_per_node.iter().enumerate() {
        for (s, &socket) in sockets.iter().enumerate() {
            let nic = b.nic(format!("Node {node} NIC {s}"));
            // The NIC's host interface is provisioned to line rate; the
            // high hop cost of fabric links keeps intra-node traffic off it.
            b.link(socket, nic, kind, rate);
            b.link(nic, switch, kind, rate);
        }
    }
    let sockets = sockets_per_node[0].len();
    Platform::from_parts(
        base,
        b.build(),
        base.cpu_model(),
        base.host_p2p_policy(),
        Some(ClusterLayout {
            nodes: n_nodes,
            gpus_per_node: base.gpus_per_node(),
            sockets_per_node: sockets,
            nics_per_node: sockets,
            fabric,
        }),
    )
}

/// A cluster of NVIDIA DGX A100 boxes (8 GPUs per node).
#[must_use]
pub fn dgx_a100_cluster(n_nodes: usize, fabric: Fabric) -> Platform {
    cluster_of(PlatformId::DgxA100, n_nodes, fabric)
}

/// A cluster of IBM Power System AC922 boxes (4 GPUs per node).
#[must_use]
pub fn ibm_ac922_cluster(n_nodes: usize, fabric: Fabric) -> Platform {
    cluster_of(PlatformId::IbmAc922, n_nodes, fabric)
}

/// A cluster of DELTA D22x M4 PS boxes (4 GPUs per node).
#[must_use]
pub fn delta_d22x_cluster(n_nodes: usize, fabric: Fabric) -> Platform {
    cluster_of(PlatformId::DeltaD22x, n_nodes, fabric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_topology::route::{route, route_with};
    use msort_topology::{allocate_rates, gbps, Endpoint, NodeKind};

    #[test]
    fn clusters_build_and_validate() {
        for base in PlatformId::paper_set() {
            for fabric in Fabric::all() {
                for nodes in [1, 2, 4, 8] {
                    let p = cluster_of(base, nodes, fabric);
                    let g = base.gpus_per_node();
                    assert_eq!(p.gpu_count(), nodes * g);
                    assert_eq!(p.topology.cpu_count(), 2 * nodes);
                    // Two NICs per node plus the central switch.
                    assert_eq!(p.topology.nics().len(), 2 * nodes + 1);
                    let layout = p.cluster.unwrap();
                    assert_eq!(layout.nodes, nodes);
                    assert_eq!(layout.node_of_gpu(nodes * g - 1), nodes - 1);
                }
            }
        }
    }

    #[test]
    fn cross_node_routes_cross_the_fabric() {
        let p = dgx_a100_cluster(2, Fabric::IbHdr);
        let intra = route(&p.topology, Endpoint::gpu(0), Endpoint::gpu(7)).unwrap();
        assert!(!intra.crosses_nic(&p.topology));
        let inter = route(&p.topology, Endpoint::gpu(0), Endpoint::gpu(8)).unwrap();
        assert!(inter.crosses_nic(&p.topology));
        let host = route(&p.topology, Endpoint::host(0), Endpoint::host(2)).unwrap();
        assert!(host.crosses_nic(&p.topology));
    }

    #[test]
    fn single_cross_node_flow_runs_at_fabric_rate() {
        for fabric in Fabric::all() {
            let p = dgx_a100_cluster(2, fabric);
            let r = route(&p.topology, Endpoint::host(0), Endpoint::host(2)).unwrap();
            let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
            assert!(
                (rates[0] - fabric.effective_per_dir()).abs() < gbps(0.1),
                "{}: {}",
                fabric.name(),
                rates[0]
            );
        }
    }

    #[test]
    fn same_socket_flows_share_one_nic() {
        let p = dgx_a100_cluster(2, Fabric::IbNdr);
        let r1 = route(&p.topology, Endpoint::host(0), Endpoint::host(2)).unwrap();
        let r2 = route(&p.topology, Endpoint::host(0), Endpoint::host(3)).unwrap();
        let rates = allocate_rates(
            p.constraint_table(),
            &[p.flow_request(&r1), p.flow_request(&r2)],
        );
        let half = Fabric::IbNdr.effective_per_dir() / 2.0;
        assert!((rates[0] - half).abs() < gbps(0.1), "{}", rates[0]);
        assert!((rates[1] - half).abs() < gbps(0.1), "{}", rates[1]);
    }

    #[test]
    fn nic_uplink_death_reroutes_via_sibling_nic() {
        let p = dgx_a100_cluster(2, Fabric::IbHdr);
        let clean = route(&p.topology, Endpoint::host(0), Endpoint::host(2)).unwrap();
        // Kill every link of the NIC the clean route uses.
        let dead_nic = clean
            .hops
            .iter()
            .map(|h| h.to)
            .find(|&n| matches!(p.topology.node(n).kind, NodeKind::Nic))
            .unwrap();
        let rerouted = route_with(&p.topology, Endpoint::host(0), Endpoint::host(2), |l| {
            let link = p.topology.link(l);
            link.a != dead_nic && link.b != dead_nic
        })
        .unwrap();
        assert!(rerouted.crosses_nic(&p.topology));
        assert!(rerouted.hops.iter().all(|h| h.to != dead_nic));
        // The detour goes over the sibling socket's NIC, so it is longer.
        assert!(rerouted.hop_count() > clean.hop_count());
    }

    #[test]
    fn cross_node_p2p_is_not_host_p2p_capped() {
        // On the AC922 the host-P2P per-flow cap (32 GB/s) exceeds the HDR
        // fabric rate, so the exemption must leave cross-node flows paced
        // by the NIC, and within-node host P2P still capped.
        let p = ibm_ac922_cluster(2, Fabric::IbNdr);
        let inter = route(&p.topology, Endpoint::gpu(0), Endpoint::gpu(4)).unwrap();
        assert!(inter.crosses_nic(&p.topology));
        let req = p.flow_request(&inter);
        assert!(req.rate_cap.is_none());
        let intra = route(&p.topology, Endpoint::gpu(0), Endpoint::gpu(2)).unwrap();
        assert!(!intra.crosses_nic(&p.topology));
        assert_eq!(p.flow_request(&intra).rate_cap, Some(gbps(32.0)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = cluster_of(PlatformId::DgxA100, 0, Fabric::IbHdr);
    }
}
